//! Span timers, latency histograms, and per-rule evaluation profiles.
//!
//! The observability layer is zero-dependency and disabled by default: when
//! [`EvalOptions::trace`](super::EvalOptions) is off, the only cost at every
//! instrumentation site is one branch on an `Option` that is `None`. When it is
//! on, the evaluators allocate one [`EvalProfile`] per run (boxed, attached to
//! [`EvalStats`](super::EvalStats)) and record:
//!
//! * **phase spans** ([`SpanStats`]): count / total / max wall time per named
//!   phase (`eval.plan`, `eval.round`, `parallel.partition`, `parallel.merge`,
//!   `delete.overdelete`, `delete.remove`, `delete.rederive`, …);
//! * **per-rule profiles** ([`RuleProfile`]): firings, cumulative firing time,
//!   and rows in (instantiations emitted into the staging sink) / rows out
//!   (new facts staged) per rule.
//!
//! Latency distributions use [`Histogram`]: 64 fixed log-scaled buckets (one per
//! leading-bit position of the nanosecond value, i.e. bucket `i` holds samples in
//! `[2^(i-1), 2^i)` ns), so recording is two instructions and quantile estimates
//! (p50/p95/p99) are exact to within a factor of two — plenty for "is fsync 40 µs
//! or 4 ms" questions, with no allocation after construction.
//!
//! Counters and times are split on purpose: every count in a profile is
//! machine-independent and thread-count-independent (the partitioned executor
//! reconstructs the sequential emission order), while every `*_ns` field is
//! wall-clock. [`EvalProfile::shape`] extracts exactly the deterministic part.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Number of log-scaled buckets: one per leading-bit position of a `u64`
/// nanosecond value (bucket 0 holds 0 ns samples).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log-scaled latency histogram.
///
/// Bucket `i > 0` counts samples whose nanosecond value has its highest set bit
/// at position `i - 1`, i.e. values in `[2^(i-1), 2^i)`; bucket 0 counts zero
/// samples. Quantiles report the upper bound of the bucket containing the
/// requested rank (clamped to the observed maximum), so they are exact to within
/// 2x and never understate.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("total_ns", &self.total_ns)
            .field("max_ns", &self.max_ns)
            .finish_non_exhaustive()
    }
}

/// Index of the bucket a nanosecond value falls into.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, duration: Duration) {
        self.record_ns(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample given directly in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_of(ns).min(HISTOGRAM_BUCKETS - 1)] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper-bound estimate (within 2x) of the `q`-quantile in nanoseconds, for
    /// `q` in `[0, 1]`; 0 when empty. The estimate is the upper edge of the
    /// bucket holding the sample of that rank, clamped to the observed maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { 1u64 << i.min(63) };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate in nanoseconds (see [`Histogram::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Count / total / max wall time of one named phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanStats {
    /// Number of times the phase ran.
    pub count: u64,
    /// Cumulative wall time in nanoseconds.
    pub total_ns: u64,
    /// Longest single run in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Record one run of the phase.
    #[inline]
    pub fn record(&mut self, duration: Duration) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merge another span's accumulators into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-rule evaluation profile: firings, cumulative firing time, and the row
/// counts flowing through the staging sink. All fields except `time_ns` are
/// deterministic — identical at any thread count.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleProfile {
    /// Number of times the rule fired (one per scheduled firing; a partitioned
    /// firing counts once, not once per worker).
    pub firings: u64,
    /// Cumulative firing wall time in nanoseconds. For partitioned firings this
    /// sums the per-worker join times (CPU time, not elapsed round time).
    pub time_ns: u64,
    /// Instantiations the rule's joins emitted into the staging sink.
    pub rows_in: u64,
    /// New facts the sink staged (derived, scheduled for deletion, or restored,
    /// depending on the round's polarity).
    pub rows_out: u64,
}

/// Prefix of phase names that exist only on the partitioned execution path and
/// are therefore excluded from [`EvalProfile::shape`].
pub const PARALLEL_PHASE_PREFIX: &str = "parallel.";

/// The deterministic skeleton of a profile: phase names with run counts
/// (parallel-only phases excluded — they appear or vanish with the thread
/// count) and per-rule `(firings, rows_in, rows_out)`. Two runs of the same
/// program over the same data produce equal shapes at any thread count.
pub type ProfileShape = (Vec<(String, u64)>, Vec<(u64, u64, u64)>);

/// One evaluation run's trace: phase spans plus per-rule profiles.
#[derive(Clone, Debug, Default)]
pub struct EvalProfile {
    /// Wall time per named phase, keyed by the static phase name.
    pub phases: BTreeMap<&'static str, SpanStats>,
    /// Per-rule profiles, indexed by rule position in the program.
    pub rules: Vec<RuleProfile>,
}

impl EvalProfile {
    /// A profile sized for a program with `rule_count` rules.
    pub fn new(rule_count: usize) -> EvalProfile {
        EvalProfile {
            phases: BTreeMap::new(),
            rules: vec![RuleProfile::default(); rule_count],
        }
    }

    /// Record one run of the named phase.
    #[inline]
    pub fn record_phase(&mut self, name: &'static str, duration: Duration) {
        self.phases.entry(name).or_default().record(duration);
    }

    /// Record one emission through the staging sink for rule `rule_index`
    /// (`is_new` = the sink staged a new fact).
    #[inline]
    pub fn record_rule_row(&mut self, rule_index: usize, is_new: bool) {
        if let Some(rule) = self.rules.get_mut(rule_index) {
            rule.rows_in += 1;
            rule.rows_out += is_new as u64;
        }
    }

    /// Record one firing of rule `rule_index` taking `ns` nanoseconds.
    #[inline]
    pub fn record_rule_firing(&mut self, rule_index: usize, ns: u64) {
        if let Some(rule) = self.rules.get_mut(rule_index) {
            rule.firings += 1;
            rule.time_ns = rule.time_ns.saturating_add(ns);
        }
    }

    /// Merge another profile into this one (summing spans and rule counters).
    pub fn merge(&mut self, other: &EvalProfile) {
        for (&name, span) in &other.phases {
            self.phases.entry(name).or_default().merge(span);
        }
        if self.rules.len() < other.rules.len() {
            self.rules.resize(other.rules.len(), RuleProfile::default());
        }
        for (mine, theirs) in self.rules.iter_mut().zip(&other.rules) {
            mine.firings += theirs.firings;
            mine.time_ns = mine.time_ns.saturating_add(theirs.time_ns);
            mine.rows_in += theirs.rows_in;
            mine.rows_out += theirs.rows_out;
        }
    }

    /// The deterministic part of the profile: phase run counts (parallel-only
    /// phases excluded) and per-rule `(firings, rows_in, rows_out)`. Equal
    /// across thread counts for the same program and data — times are excluded.
    pub fn shape(&self) -> ProfileShape {
        let phases = self
            .phases
            .iter()
            .filter(|(name, _)| !name.starts_with(PARALLEL_PHASE_PREFIX))
            .map(|(&name, span)| (name.to_string(), span.count))
            .collect();
        let rules = self
            .rules
            .iter()
            .map(|r| (r.firings, r.rows_in, r.rows_out))
            .collect();
        (phases, rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_leading_bit() {
        let mut h = Histogram::default();
        h.record_ns(0);
        h.record_ns(1);
        h.record_ns(3);
        h.record_ns(1_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), 1_000);
        assert_eq!(h.total_ns(), 1_004);
        // p50 is the rank-2 sample (the 1 ns one): its [1, 2) bucket's upper edge.
        assert_eq!(h.p50_ns(), 2);
        // The top quantiles land in the 1_000 sample's bucket, clamped to max.
        assert_eq!(h.p99_ns(), 1_000);
        assert_eq!(h.quantile_ns(1.0), 1_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p95_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn histogram_merge_sums_samples() {
        let mut a = Histogram::default();
        a.record_ns(10);
        let mut b = Histogram::default();
        b.record_ns(1_000_000);
        b.record_ns(20);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 1_000_000);
        assert!(a.p99_ns() >= 1_000_000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::default();
        for ns in [5u64, 7, 1_000_003] {
            h.record_ns(ns);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert!(h.quantile_ns(q) <= h.max_ns());
        }
    }

    #[test]
    fn span_stats_record_and_merge() {
        let mut a = SpanStats::default();
        a.record(Duration::from_nanos(100));
        a.record(Duration::from_nanos(300));
        assert_eq!(a.count, 2);
        assert_eq!(a.total_ns, 400);
        assert_eq!(a.max_ns, 300);
        let mut b = SpanStats::default();
        b.record(Duration::from_nanos(1_000));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 1_400);
        assert_eq!(a.max_ns, 1_000);
    }

    #[test]
    fn profile_records_phases_and_rules() {
        let mut p = EvalProfile::new(2);
        p.record_phase("eval.round", Duration::from_nanos(50));
        p.record_phase("eval.round", Duration::from_nanos(70));
        p.record_rule_firing(0, 40);
        p.record_rule_row(0, true);
        p.record_rule_row(0, false);
        assert_eq!(p.phases["eval.round"].count, 2);
        assert_eq!(p.rules[0].firings, 1);
        assert_eq!(p.rules[0].rows_in, 2);
        assert_eq!(p.rules[0].rows_out, 1);
        // Out-of-range rule indexes are ignored, not a panic.
        p.record_rule_firing(9, 1);
        p.record_rule_row(9, true);
    }

    #[test]
    fn profile_merge_sums_and_resizes() {
        let mut a = EvalProfile::new(1);
        a.record_rule_firing(0, 10);
        let mut b = EvalProfile::new(3);
        b.record_rule_firing(2, 5);
        b.record_phase("eval.plan", Duration::from_nanos(9));
        a.merge(&b);
        assert_eq!(a.rules.len(), 3);
        assert_eq!(a.rules[0].firings, 1);
        assert_eq!(a.rules[2].firings, 1);
        assert_eq!(a.phases["eval.plan"].count, 1);
    }

    #[test]
    fn shape_excludes_parallel_phases_and_times() {
        let mut p = EvalProfile::new(1);
        p.record_phase("eval.round", Duration::from_nanos(123));
        p.record_phase("parallel.merge", Duration::from_nanos(456));
        p.record_rule_firing(0, 999);
        p.record_rule_row(0, true);
        let (phases, rules) = p.shape();
        assert_eq!(phases, vec![("eval.round".to_string(), 1)]);
        assert_eq!(rules, vec![(1, 1, 1)]);

        // A second profile with different times but the same counts has the
        // same shape.
        let mut q = EvalProfile::new(1);
        q.record_phase("eval.round", Duration::from_nanos(77_000));
        q.record_rule_firing(0, 1);
        q.record_rule_row(0, true);
        assert_eq!(p.shape(), q.shape());
    }
}
