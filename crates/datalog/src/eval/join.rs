//! Rule compilation and the nested-loop/index join used to instantiate rule bodies.
//!
//! Each rule is compiled once per evaluation into a [`CompiledRule`]: variables are
//! mapped to dense environment slots, and for every body literal we precompute which
//! argument positions are already bound when the literal is reached in left-to-right
//! order (the paper's sideways-information-passing order). Those bound positions decide
//! which secondary index the evaluator asks the storage layer to maintain.
//!
//! The built-in predicate `succ/2` (successor on integers) is evaluated arithmetically
//! when enabled; it exists solely so that the Counting transformation of §6.4, which
//! introduces derivation-depth indices `I + 1`, can be executed by the same engine.

use crate::ast::{Atom, Const, Rule, Term};
use crate::fx::FxHashMap;
use crate::storage::{Database, Relation, RowId};
use crate::symbol::Symbol;

/// Evaluation options shared by the naive and semi-naive evaluators.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Hard cap on fixpoint iterations; exceeded caps return an error so that
    /// non-terminating programs (e.g. Counting applied to a left-linear recursion,
    /// §6.4) can be detected by tests and benchmarks instead of hanging.
    pub max_iterations: usize,
    /// Enable the arithmetic `succ/2` builtin (disabled automatically for any
    /// predicate that has explicit facts in the database).
    pub enable_builtins: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_iterations: 1_000_000,
            enable_builtins: true,
        }
    }
}

/// How a term of a body literal is resolved at join time.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// A constant that must match.
    Const(Const),
    /// A variable occupying environment slot `usize`.
    Var(usize),
}

/// A body literal with its compiled argument slots.
#[derive(Clone, Debug)]
pub struct CompiledLiteral {
    /// Predicate of the literal.
    pub predicate: Symbol,
    slots: Vec<Slot>,
    /// Argument positions that are bound (constant or previously-bound variable) when
    /// the literal is reached left-to-right. Sorted.
    pub bound_positions: Vec<usize>,
    /// Is this literal the builtin successor predicate?
    is_succ: bool,
}

/// A rule compiled for evaluation.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Index of the rule in the source program (for statistics).
    pub rule_index: usize,
    /// Head predicate.
    pub head_predicate: Symbol,
    head_slots: Vec<Slot>,
    /// Compiled body literals in source order.
    pub literals: Vec<CompiledLiteral>,
    /// Number of variable slots in the environment.
    pub env_size: usize,
    /// Positions (within the body) of literals whose predicate is an IDB predicate.
    pub idb_literal_positions: Vec<usize>,
}

/// The name of the successor builtin.
pub fn succ_symbol() -> Symbol {
    Symbol::intern("succ")
}

impl CompiledRule {
    /// Compile `rule`. `is_idb` classifies predicates as IDB (has rules) for the
    /// semi-naive delta machinery.
    pub fn compile(
        rule_index: usize,
        rule: &Rule,
        is_idb: &dyn Fn(Symbol) -> bool,
        options: &EvalOptions,
    ) -> CompiledRule {
        let mut var_slots: FxHashMap<Symbol, usize> = FxHashMap::default();
        let mut bound_so_far: Vec<bool> = Vec::new();

        let slot_of = |term: &Term,
                       var_slots: &mut FxHashMap<Symbol, usize>,
                       bound: &mut Vec<bool>| match term {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => {
                let next = var_slots.len();
                let idx = *var_slots.entry(*v).or_insert(next);
                if idx == bound.len() {
                    bound.push(false);
                }
                Slot::Var(idx)
            }
        };

        let mut literals = Vec::with_capacity(rule.body.len());
        let mut idb_literal_positions = Vec::new();
        for (pos, atom) in rule.body.iter().enumerate() {
            let mut slots = Vec::with_capacity(atom.terms.len());
            let mut bound_positions = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                let slot = slot_of(term, &mut var_slots, &mut bound_so_far);
                match slot {
                    Slot::Const(_) => bound_positions.push(i),
                    Slot::Var(idx) => {
                        if bound_so_far[idx] {
                            bound_positions.push(i);
                        }
                    }
                }
                slots.push(slot);
            }
            // After matching this literal, all its variables are bound.
            for slot in &slots {
                if let Slot::Var(idx) = slot {
                    bound_so_far[*idx] = true;
                }
            }
            let is_succ = options.enable_builtins && atom.predicate == succ_symbol();
            if is_idb(atom.predicate) {
                idb_literal_positions.push(pos);
            }
            literals.push(CompiledLiteral {
                predicate: atom.predicate,
                slots,
                bound_positions,
                is_succ,
            });
        }

        let head_slots = rule
            .head
            .terms
            .iter()
            .map(|t| slot_of(t, &mut var_slots, &mut bound_so_far))
            .collect();

        CompiledRule {
            rule_index,
            head_predicate: rule.head.predicate,
            head_slots,
            literals,
            env_size: var_slots.len(),
            idb_literal_positions,
        }
    }

    /// Ask the database to maintain the indexes this rule's join will probe.
    pub fn ensure_indexes(&self, db: &mut Database, arities: &FxHashMap<Symbol, usize>) {
        for literal in &self.literals {
            if literal.is_succ {
                continue;
            }
            if literal.bound_positions.is_empty()
                || literal.bound_positions.len() >= literal.slots.len()
            {
                continue;
            }
            let arity = arities
                .get(&literal.predicate)
                .copied()
                .unwrap_or(literal.slots.len());
            db.ensure_relation(literal.predicate, arity)
                .ensure_index(&literal.bound_positions);
        }
    }

    /// Instantiate the head for a completed environment.
    fn head_tuple(&self, env: &[Option<Const>], out: &mut Vec<Const>) {
        out.clear();
        for slot in &self.head_slots {
            match slot {
                Slot::Const(c) => out.push(*c),
                Slot::Var(idx) => {
                    out.push(env[*idx].expect("unbound head variable at firing time"))
                }
            }
        }
    }

    /// Enumerate all instantiations of the body against `db`, calling `emit` with the
    /// instantiated head tuple for each. If `delta` is `Some((position, relation))`,
    /// the literal at `position` is matched against `relation` instead of the database
    /// relation for its predicate (the semi-naive delta).
    ///
    /// Returns the number of successful body instantiations.
    pub fn fire(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        emit: &mut dyn FnMut(&[Const]),
    ) -> usize {
        let mut env: Vec<Option<Const>> = vec![None; self.env_size];
        let mut head_buf: Vec<Const> = Vec::with_capacity(self.head_slots.len());
        let mut scratch: Vec<Vec<RowId>> = vec![Vec::new(); self.literals.len()];
        let mut count = 0usize;
        self.join(
            db,
            delta,
            0,
            &mut env,
            &mut scratch,
            &mut head_buf,
            emit,
            &mut count,
        );
        count
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        depth: usize,
        env: &mut Vec<Option<Const>>,
        scratch: &mut Vec<Vec<RowId>>,
        head_buf: &mut Vec<Const>,
        emit: &mut dyn FnMut(&[Const]),
        count: &mut usize,
    ) {
        if depth == self.literals.len() {
            *count += 1;
            self.head_tuple(env, head_buf);
            emit(head_buf);
            return;
        }
        let literal = &self.literals[depth];

        // Builtin successor: succ(X, Y) with X bound to an integer binds/checks Y=X+1;
        // with only Y bound it binds/checks X=Y-1.
        if literal.is_succ && db.relation(literal.predicate).is_none() {
            self.join_succ(db, delta, depth, env, scratch, head_buf, emit, count);
            return;
        }

        let use_delta = matches!(delta, Some((pos, _)) if pos == depth);
        let relation: &Relation = if use_delta {
            delta.expect("delta checked above").1
        } else {
            match db.relation(literal.predicate) {
                Some(rel) => rel,
                None => return, // empty relation: no matches
            }
        };
        if relation.arity() != literal.slots.len() {
            return;
        }

        // Build the selection pattern from currently bound slots.
        let mut pattern: Vec<Option<Const>> = Vec::with_capacity(literal.slots.len());
        for slot in &literal.slots {
            match slot {
                Slot::Const(c) => pattern.push(Some(*c)),
                Slot::Var(idx) => pattern.push(env[*idx]),
            }
        }

        // Take this literal's scratch buffer out to appease the borrow checker; it is
        // restored before returning.
        let mut rows = std::mem::take(&mut scratch[depth]);
        relation.select(&pattern, &mut rows);
        for &row_id in &rows {
            let row = relation.row(row_id);
            // Bind unbound variables; remember which so we can undo.
            let mut newly_bound: Vec<usize> = Vec::new();
            let mut consistent = true;
            for (i, slot) in literal.slots.iter().enumerate() {
                match slot {
                    Slot::Const(c) => {
                        if row[i] != *c {
                            consistent = false;
                            break;
                        }
                    }
                    Slot::Var(idx) => match env[*idx] {
                        Some(value) => {
                            if row[i] != value {
                                consistent = false;
                                break;
                            }
                        }
                        None => {
                            env[*idx] = Some(row[i]);
                            newly_bound.push(*idx);
                        }
                    },
                }
            }
            if consistent {
                self.join(db, delta, depth + 1, env, scratch, head_buf, emit, count);
            }
            for idx in newly_bound {
                env[idx] = None;
            }
        }
        rows.clear();
        scratch[depth] = rows;
    }

    #[allow(clippy::too_many_arguments)]
    fn join_succ(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        depth: usize,
        env: &mut Vec<Option<Const>>,
        scratch: &mut Vec<Vec<RowId>>,
        head_buf: &mut Vec<Const>,
        emit: &mut dyn FnMut(&[Const]),
        count: &mut usize,
    ) {
        let literal = &self.literals[depth];
        if literal.slots.len() != 2 {
            return;
        }
        let value_of = |slot: &Slot, env: &[Option<Const>]| match slot {
            Slot::Const(c) => Some(*c),
            Slot::Var(idx) => env[*idx],
        };
        let first = value_of(&literal.slots[0], env);
        let second = value_of(&literal.slots[1], env);
        let pair: Option<(Const, Const)> = match (first, second) {
            (Some(Const::Int(x)), _) => Some((Const::Int(x), Const::Int(x + 1))),
            (None, Some(Const::Int(y))) => Some((Const::Int(y - 1), Const::Int(y))),
            _ => None, // unbound or non-integer: no matches
        };
        let Some((x, y)) = pair else { return };
        // Check/bind both positions against (x, y).
        let expected = [x, y];
        let mut newly_bound: Vec<usize> = Vec::new();
        let mut consistent = true;
        for (i, slot) in literal.slots.iter().enumerate() {
            match slot {
                Slot::Const(c) => {
                    if *c != expected[i] {
                        consistent = false;
                        break;
                    }
                }
                Slot::Var(idx) => match env[*idx] {
                    Some(value) => {
                        if value != expected[i] {
                            consistent = false;
                            break;
                        }
                    }
                    None => {
                        env[*idx] = Some(expected[i]);
                        newly_bound.push(*idx);
                    }
                },
            }
        }
        if consistent {
            self.join(db, delta, depth + 1, env, scratch, head_buf, emit, count);
        }
        for idx in newly_bound {
            env[idx] = None;
        }
    }
}

/// Build an atom from a predicate and tuple (diagnostic helper used by evaluators).
pub fn fact_atom(predicate: Symbol, tuple: &[Const]) -> Atom {
    Atom::new(predicate, tuple.iter().map(|&c| Term::Const(c)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn compile(rule_text: &str) -> CompiledRule {
        let rule = parse_rule(rule_text).unwrap();
        CompiledRule::compile(0, &rule, &|_| false, &EvalOptions::default())
    }

    #[test]
    fn bound_positions_follow_left_to_right_sip() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        // In e(X, W): nothing bound yet.
        assert!(compiled.literals[0].bound_positions.is_empty());
        // In t(W, Y): W was bound by e(X, W).
        assert_eq!(compiled.literals[1].bound_positions, vec![0]);
        assert_eq!(compiled.env_size, 3);
    }

    #[test]
    fn constants_count_as_bound() {
        let compiled = compile("q(Y) :- t(5, Y).");
        assert_eq!(compiled.literals[0].bound_positions, vec![0]);
    }

    #[test]
    fn fire_joins_two_literals() {
        let compiled = compile("t(X, Y) :- e(X, W), f(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("e", &[c(1), c(3)]);
        db.add_fact("f", &[c(2), c(10)]);
        db.add_fact("f", &[c(3), c(11)]);
        db.add_fact("f", &[c(4), c(12)]);
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |tuple| results.push(tuple.to_vec()));
        assert_eq!(fired, 2);
        results.sort();
        assert_eq!(results, vec![vec![c(1), c(10)], vec![c(1), c(11)]]);
    }

    #[test]
    fn fire_respects_repeated_variables() {
        let compiled = compile("loop(X) :- e(X, X).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(1)]);
        db.add_fact("e", &[c(1), c(2)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |tuple| results.push(tuple.to_vec()));
        assert_eq!(results, vec![vec![c(1)]]);
    }

    #[test]
    fn fire_uses_delta_for_designated_literal() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("t", &[c(2), c(3)]);
        db.add_fact("t", &[c(2), c(4)]);
        // Delta contains only one of the two t facts.
        let mut delta = Relation::new(2);
        delta.insert(&[c(2), c(3)]);
        let mut results = Vec::new();
        compiled.fire(&db, Some((1, &delta)), &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(1), c(3)]]);
    }

    #[test]
    fn fire_with_constants_in_head() {
        let compiled = compile("m(5).");
        let db = Database::new();
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(fired, 1);
        assert_eq!(results, vec![vec![c(5)]]);
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let compiled = compile("p(X) :- q(X).");
        let db = Database::new();
        let mut results = Vec::new();
        assert_eq!(
            compiled.fire(&db, None, &mut |t| results.push(t.to_vec())),
            0
        );
        assert!(results.is_empty());
    }

    #[test]
    fn arity_mismatch_is_no_match_not_a_panic() {
        let compiled = compile("p(X) :- q(X).");
        let mut db = Database::new();
        db.add_fact("q", &[c(1), c(2)]); // q stored with arity 2, literal has arity 1
        let mut results = Vec::new();
        assert_eq!(
            compiled.fire(&db, None, &mut |t| results.push(t.to_vec())),
            0
        );
    }

    #[test]
    fn succ_builtin_binds_forward_and_backward() {
        let compiled = compile("next(Y) :- start(X), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("start", &[c(7)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(8)]]);

        let compiled = compile("prev(X) :- end(Y), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("end", &[c(7)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(6)]]);
    }

    #[test]
    fn succ_builtin_checks_when_both_bound() {
        let compiled = compile("ok :- a(X), b(Y), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("a", &[c(1)]);
        db.add_fact("b", &[c(2)]);
        db.add_fact("b", &[c(5)]);
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(fired, 1, "only succ(1,2) holds");
    }

    #[test]
    fn explicit_succ_relation_overrides_builtin() {
        let compiled = compile("p(Y) :- start(X), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("start", &[c(1)]);
        db.add_fact("succ", &[c(1), c(100)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(100)]]);
    }

    #[test]
    fn ensure_indexes_creates_probeable_indexes() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("t", &[c(2), c(3)]);
        let mut arities = FxHashMap::default();
        arities.insert(Symbol::intern("e"), 2);
        arities.insert(Symbol::intern("t"), 2);
        compiled.ensure_indexes(&mut db, &arities);
        // t is probed on its first column.
        assert!(db
            .relation(Symbol::intern("t"))
            .unwrap()
            .probe(&[0], &[c(2)])
            .is_some());
    }
}
