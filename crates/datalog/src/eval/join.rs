//! Rule compilation and the compiled nested-loop/index join used to instantiate rule
//! bodies.
//!
//! Each rule is compiled once per evaluation into a [`CompiledRule`]: variables are
//! mapped to dense environment slots, and for every body literal we precompute which
//! argument positions are already bound when the literal is reached in left-to-right
//! order (the paper's sideways-information-passing order). Those bound positions decide
//! which secondary index the evaluator asks the storage layer to maintain.
//!
//! Evaluation then runs in two compiled layers on top:
//!
//! * **Access paths** ([`AccessPath`], [`RuleAccess`]): before firing rules, the
//!   evaluator resolves every body literal to a concrete access path against the
//!   database — a [`FullScan`](AccessPath::FullScan), an
//!   [`IndexProbe`](AccessPath::IndexProbe) carrying the relation's stable
//!   [`IndexId`], or a [`Membership`](AccessPath::Membership) check for fully bound
//!   literals. The inner loop never searches the index list or rebuilds a selection
//!   pattern.
//! * **Join scratch** ([`JoinScratch`]): one preallocated buffer set per rule (the
//!   environment, the head tuple, a key buffer, and an unbind stack) reused across
//!   every [`CompiledRule::fire_with`] call, so the steady-state join performs no heap
//!   allocation per row. Probes hash the bound values straight out of the environment —
//!   no key tuple is ever materialized — and candidate verification is folded into the
//!   binding loop, which must compare every row against the pattern anyway.
//!
//! The built-in predicate `succ/2` (successor on integers) is evaluated arithmetically
//! when enabled; it exists solely so that the Counting transformation of §6.4, which
//! introduces derivation-depth indices `I + 1`, can be executed by the same engine.

use crate::ast::{Atom, Const, Rule, Term};
use crate::fault::{CancelToken, FaultAction, FaultInjector, FaultSite};
use crate::fx::{FxHashMap, FxHashSet};
use crate::storage::{shard_of_row, Database, IndexId, KeyHasher, Relation, RowId};
use crate::symbol::Symbol;

use super::stats::EvalStats;
use super::{EvalError, LimitReason};

/// Environment variable overriding the default worker-thread count
/// ([`EvalOptions::threads`]): `FACTORLOG_THREADS=4` parallelizes every evaluation,
/// `FACTORLOG_THREADS=0` uses one worker per available core.
pub const THREADS_ENV_VAR: &str = "FACTORLOG_THREADS";

/// Default minimum number of outer rows a semi-naive round must feed its firings
/// before the evaluator partitions it across workers; below this, thread-spawn and
/// merge overhead dominates and the round runs sequentially (which is why long-chain
/// workloads with tiny deltas stay at single-thread speed no matter the setting).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 512;

/// Evaluation options shared by the naive and semi-naive evaluators.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Hard cap on fixpoint iterations; exceeded caps return an error so that
    /// non-terminating programs (e.g. Counting applied to a left-linear recursion,
    /// §6.4) can be detected by tests and benchmarks instead of hanging.
    pub max_iterations: usize,
    /// Enable the arithmetic `succ/2` builtin (disabled automatically for any
    /// predicate that has explicit facts in the database).
    pub enable_builtins: bool,
    /// Worker threads for hash-partitioned semi-naive rounds: `1` evaluates
    /// sequentially, `0` uses one worker per available core. Parallel evaluation
    /// produces the exact single-thread result — same fact set, same relation
    /// insertion order, same machine-independent counters — so this is purely a
    /// wall-clock knob. Defaults to the `FACTORLOG_THREADS` environment variable,
    /// or 1 when unset.
    pub threads: usize,
    /// Reorder rule-body literals at plan time (greedy: most bound argument
    /// positions first, then smallest relation at plan-resolution time) before
    /// compiling access paths. Bodies containing the virtual `succ/2` builtin are
    /// never reordered (its evaluability is position-dependent). Purely an
    /// execution-order change: the set of derived facts is unaffected.
    pub reorder_literals: bool,
    /// Minimum total outer rows in a round before it is partitioned across workers
    /// (see [`DEFAULT_PARALLEL_THRESHOLD`]). Benchmarks and tests lower this to
    /// exercise the parallel path on small inputs.
    pub parallel_threshold: usize,
    /// Collect an [`EvalProfile`](super::trace::EvalProfile) (phase spans,
    /// per-rule firing times and row counts) on the run's statistics. Off by
    /// default; when off, every instrumentation site costs one branch on a
    /// `None` option and no allocation.
    pub trace: bool,
    /// Wall-clock budget for one evaluation entry point (a full evaluation, a
    /// resume, or a delete propagation). Checked at every round boundary and,
    /// within rounds, every [`POLL_INTERVAL`] candidate rows of the compiled
    /// join — the cancellation granularity bound. `None` (the default) means
    /// unlimited and costs nothing.
    pub deadline: Option<std::time::Duration>,
    /// Cap on facts derived (plus facts scheduled for deletion) by one
    /// evaluation entry point, checked at round boundaries. `None` = unlimited.
    pub max_derived_facts: Option<usize>,
    /// Budget on the evaluation's estimated memory footprint, checked at round
    /// boundaries. The estimate piggybacks on relation/staging row counts
    /// (`rows x arity x size_of::<Const>()`) and is documented accurate within
    /// 2x — indexes and dedup tables are not counted. `None` = unlimited.
    pub memory_budget_bytes: Option<usize>,
    /// Shareable cooperative-cancellation token. When present, the evaluator
    /// polls it every [`POLL_INTERVAL`] candidate rows and at round boundaries,
    /// aborting with [`LimitReason::Cancelled`] once it is set (front ends —
    /// e.g. the REPL's Ctrl-C handler — keep a clone and set it from another
    /// thread). `None` (the default) disables polling entirely.
    pub cancel: Option<CancelToken>,
    /// Chaos-test fault injector threaded through the evaluator's named sites
    /// (see [`FaultSite`]). `None` in production.
    pub fault_injector: Option<FaultInjector>,
}

/// The process-wide default thread count: `FACTORLOG_THREADS`, read once (defaults
/// are constructed on hot paths — per prepared-query replay — so the environment
/// lookup must not recur).
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(1)
    })
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_iterations: 1_000_000,
            enable_builtins: true,
            threads: default_threads(),
            reorder_literals: true,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            trace: false,
            deadline: None,
            max_derived_facts: None,
            memory_budget_bytes: None,
            cancel: None,
            fault_injector: None,
        }
    }
}

/// Hard ceiling on the worker count, whatever `threads` asks for: beyond this,
/// per-round spawn and merge costs dominate any join, and an absurd setting (a typo'd
/// `:threads 500000`) must not take the process down trying to spawn OS threads.
pub const MAX_WORKERS: usize = 64;

impl EvalOptions {
    /// The concrete worker count this configuration asks for: `threads`, with `0`
    /// resolved to the number of available cores, clamped to [`MAX_WORKERS`].
    /// Oversubscription below the ceiling is allowed on purpose (the determinism
    /// tests run 8 workers on 1 core).
    pub fn effective_threads(&self) -> usize {
        let requested = match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        requested.min(MAX_WORKERS)
    }

    /// Is any resource guardrail (limit, deadline, cancel token, fault
    /// injector) armed on these options?
    pub fn has_guardrails(&self) -> bool {
        self.deadline.is_some()
            || self.max_derived_facts.is_some()
            || self.memory_budget_bytes.is_some()
            || self.cancel.is_some()
            || self.fault_injector.is_some()
    }
}

/// Candidate rows the compiled join enumerates between two cooperative
/// governance polls — the intra-round cancellation granularity bound. Between
/// polls a join performs at most this many row bindings before noticing a
/// cancelled token, an expired deadline, or an injected join fault.
pub const POLL_INTERVAL: u32 = 1024;

/// The intra-round half of governance: a countdown the compiled join decrements
/// once per candidate row (at every depth). Every [`POLL_INTERVAL`] rows it
/// polls the cancel tokens, the deadline, and the join-loop fault site; once
/// tripped, the join unwinds by refusing further rows (each remaining row costs
/// one branch) and the [`Governor`] turns the trip into a structured error at
/// the next round boundary. Armed per evaluation via [`JoinScratch::arm_poll`];
/// `None` — the production default with no guardrails — costs one branch per
/// row.
#[derive(Clone, Debug)]
pub struct JoinPoll {
    user_cancel: Option<CancelToken>,
    abort: CancelToken,
    deadline_at: Option<std::time::Instant>,
    injector: FaultInjector,
    countdown: u32,
    tripped: bool,
}

impl JoinPoll {
    /// Count one candidate row; every [`POLL_INTERVAL`] rows, poll the
    /// governance flags (recording the poll in `checks`). Returns `true` when
    /// the join should stop enumerating rows.
    #[inline]
    fn tick(&mut self, checks: &mut usize) -> bool {
        if self.tripped {
            return true;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.countdown = POLL_INTERVAL;
        *checks += 1;
        match self.injector.hit(FaultSite::JoinOuterLoop) {
            Some(FaultAction::Panic) => panic!("injected fault (join-outer-loop)"),
            Some(FaultAction::Error) => {
                // The structured `EvalError::Injected` surfaces at the next
                // round boundary; here the join just stops emitting.
                self.tripped = true;
            }
            None => {
                if self.abort.is_cancelled()
                    || self
                        .user_cancel
                        .as_ref()
                        .is_some_and(CancelToken::is_cancelled)
                    || self
                        .deadline_at
                        .is_some_and(|at| std::time::Instant::now() >= at)
                {
                    self.tripped = true;
                }
            }
        }
        self.tripped
    }
}

/// Per-evaluation resource governor: created at each evaluation entry point
/// (full evaluation, resume, delete propagation), it owns the start timestamp
/// the deadline is measured from, the configured limits, and the internal
/// abort token panic isolation uses to stop sibling workers. Round drivers call
/// [`Governor::check_round`] at every round boundary and arm worker scratches
/// with [`Governor::join_poll`] for the intra-round checks.
pub struct Governor {
    started: std::time::Instant,
    deadline: Option<std::time::Duration>,
    max_derived_facts: Option<usize>,
    memory_budget_bytes: Option<usize>,
    user_cancel: Option<CancelToken>,
    /// Internal abort flag, distinct from the caller's token: a panicking
    /// worker sets it so its siblings trip at their next poll, without
    /// permanently cancelling the caller's long-lived token.
    abort: CancelToken,
    injector: FaultInjector,
    poll_armed: bool,
}

impl Governor {
    /// A governor for one evaluation under `options`, started now.
    pub fn new(options: &EvalOptions) -> Governor {
        let injector = options.fault_injector.clone().unwrap_or_default();
        let poll_armed = options.deadline.is_some()
            || options.cancel.is_some()
            || injector.site() == Some(FaultSite::JoinOuterLoop);
        Governor {
            started: std::time::Instant::now(),
            deadline: options.deadline,
            max_derived_facts: options.max_derived_facts,
            memory_budget_bytes: options.memory_budget_bytes,
            user_cancel: options.cancel.clone(),
            abort: CancelToken::new(),
            injector,
            poll_armed,
        }
    }

    /// Is any guardrail armed at all? When `false`, [`Governor::check_round`]
    /// is a single branch and no scratch carries a poll.
    pub fn armed(&self) -> bool {
        self.poll_armed
            || self.max_derived_facts.is_some()
            || self.memory_budget_bytes.is_some()
            || self.injector.site().is_some()
    }

    /// The internal abort token. Panic isolation sets it when a worker dies so
    /// sibling workers trip at their next poll.
    pub fn abort_token(&self) -> CancelToken {
        self.abort.clone()
    }

    /// A join-loop poll bound to this governor, or `None` when no intra-round
    /// guardrail is armed (limits checked only at round boundaries need no
    /// per-row countdown).
    pub fn join_poll(&self) -> Option<JoinPoll> {
        if !self.poll_armed {
            return None;
        }
        Some(JoinPoll {
            user_cancel: self.user_cancel.clone(),
            abort: self.abort.clone(),
            deadline_at: self.deadline.map(|d| self.started + d),
            injector: self.injector.clone(),
            countdown: POLL_INTERVAL,
            tripped: false,
        })
    }

    /// Round-boundary check of every guardrail: cancellation (the caller's
    /// token or the internal abort), the deadline, the derived-fact cap, and
    /// the memory budget. `estimate_bytes` is consulted only when a memory
    /// budget is set. On abort, bumps `limit_aborts` and returns
    /// [`EvalError::LimitExceeded`] carrying a clone of the counters so far.
    pub fn check_round(
        &self,
        stats: &mut EvalStats,
        estimate_bytes: impl FnOnce() -> usize,
    ) -> Result<(), EvalError> {
        if !self.armed() {
            return Ok(());
        }
        stats.cancel_checks += 1;
        // An Error-action join fault trips mid-round and surfaces here, at the
        // first boundary after the join exited early.
        if let Some((site, FaultAction::Error)) = self.injector.fired_at() {
            return Err(EvalError::Injected { site });
        }
        let reason = if self.abort.is_cancelled()
            || self
                .user_cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
        {
            Some(LimitReason::Cancelled)
        } else {
            None
        };
        let reason = reason.or_else(|| {
            self.deadline.and_then(|budget| {
                let elapsed = self.started.elapsed();
                (elapsed >= budget).then_some(LimitReason::Deadline { budget, elapsed })
            })
        });
        let reason = reason.or_else(|| {
            self.max_derived_facts.and_then(|limit| {
                let derived = stats.facts_derived + stats.retractions;
                (derived > limit).then_some(LimitReason::DerivedFacts { limit, derived })
            })
        });
        let reason = reason.or_else(|| {
            self.memory_budget_bytes.and_then(|budget_bytes| {
                let estimated_bytes = estimate_bytes();
                (estimated_bytes > budget_bytes).then_some(LimitReason::MemoryBudget {
                    budget_bytes,
                    estimated_bytes,
                })
            })
        });
        match reason {
            None => Ok(()),
            Some(reason) => {
                stats.limit_aborts += 1;
                Err(EvalError::LimitExceeded {
                    reason,
                    elapsed: self.started.elapsed(),
                    partial_stats: Box::new(stats.clone()),
                })
            }
        }
    }

    /// Report reaching a round-boundary fault site (round merge, the delete
    /// phases): a no-op unless the injector is armed there, an
    /// [`EvalError::Injected`] for an `Error`-action fault, a panic for a
    /// `Panic`-action one (contained by the engine's isolation boundary).
    pub fn fault_site(&self, site: FaultSite) -> Result<(), EvalError> {
        match self.injector.hit(site) {
            None => Ok(()),
            Some(FaultAction::Error) => Err(EvalError::Injected { site }),
            Some(FaultAction::Panic) => panic!("injected fault ({site})"),
        }
    }
}

/// How a term of a body literal is resolved at join time.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// A constant that must match.
    Const(Const),
    /// A variable occupying environment slot `usize`.
    Var(usize),
}

/// A body literal with its compiled argument slots.
#[derive(Clone, Debug)]
pub struct CompiledLiteral {
    /// Predicate of the literal.
    pub predicate: Symbol,
    slots: Vec<Slot>,
    /// Argument positions that are bound (constant or previously-bound variable) when
    /// the literal is reached left-to-right. Sorted.
    pub bound_positions: Vec<usize>,
    /// Is this literal the builtin successor predicate?
    is_succ: bool,
}

impl CompiledLiteral {
    /// Number of argument positions of the literal.
    pub fn arity(&self) -> usize {
        self.slots.len()
    }

    /// Is this literal compiled against the arithmetic `succ/2` builtin?
    pub fn is_builtin_succ(&self) -> bool {
        self.is_succ
    }

    /// Does this literal want a (nontrivial) secondary index on its bound positions?
    /// Shared by [`CompiledRule::ensure_indexes`] (database relations) and the
    /// compiled program's index plan (delta/staging relations) — the two must agree
    /// or delta joins silently degrade to scans.
    pub fn wants_index(&self) -> bool {
        !self.is_succ
            && !self.bound_positions.is_empty()
            && self.bound_positions.len() < self.slots.len()
    }
}

/// The concrete way one body literal is matched against its relation, resolved once
/// per evaluation (after [`CompiledRule::ensure_indexes`]) instead of re-derived per
/// row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Iterate every row: no position is bound, or no covering index exists.
    FullScan,
    /// Every position is bound: one membership check against the dedup table.
    Membership,
    /// Probe the relation's hash index on the literal's bound positions.
    IndexProbe(IndexId),
}

/// The resolved access paths of one rule's body literals, in literal order.
#[derive(Clone, Debug)]
pub struct RuleAccess {
    paths: Vec<AccessPath>,
}

/// Join-side counters accumulated in the scratch and drained into
/// [`super::stats::EvalStats`] by the evaluators.
#[derive(Clone, Copy, Debug, Default)]
pub struct JoinCounters {
    /// Index probes performed (one per literal instantiation served by an index).
    pub index_probes: usize,
    /// Full scans performed (one per literal instantiation that walked the relation).
    pub full_scans: usize,
    /// Membership checks performed for fully bound literals.
    pub membership_checks: usize,
    /// Cooperative governance polls performed by the join loop (one per
    /// [`POLL_INTERVAL`] candidate rows while a poll is armed; always zero
    /// without guardrails).
    pub cancel_checks: usize,
}

/// Reusable per-rule join state: preallocated buffers sized at construction so that
/// steady-state firing performs no per-row heap allocation. Create one per rule per
/// evaluation with [`CompiledRule::scratch`] and pass it to every
/// [`CompiledRule::fire_with`] call.
#[derive(Clone, Debug)]
pub struct JoinScratch {
    /// Variable bindings, indexed by environment slot.
    env: Vec<Option<Const>>,
    /// The instantiated head tuple.
    head_buf: Vec<Const>,
    /// Key buffer for membership checks of fully bound literals.
    key_buf: Vec<Const>,
    /// Stack of environment slots bound during descent; each join frame remembers its
    /// base and truncates back to it on exit (replacing the per-row `newly_bound`
    /// vector of the interpreted join).
    unbind: Vec<usize>,
    /// The armed governance poll, if any (see [`JoinScratch::arm_poll`]).
    poll: Option<JoinPoll>,
    /// Join operation counters, drained by the evaluator.
    pub counters: JoinCounters,
}

impl JoinScratch {
    /// Arm (or disarm) the cooperative governance poll for this scratch. Round
    /// drivers arm every scratch from [`Governor::join_poll`] at the start of a
    /// governed evaluation; an unarmed scratch pays one branch per row.
    pub fn arm_poll(&mut self, poll: Option<JoinPoll>) {
        self.poll = poll;
    }

    /// Did the armed poll trip (cancellation, deadline, or injected join
    /// fault)? The structured error is produced by the round driver's
    /// [`Governor::check_round`]; this accessor lets it skip further firings
    /// first.
    pub fn poll_tripped(&self) -> bool {
        self.poll.as_ref().is_some_and(|p| p.tripped)
    }
}

/// A rule compiled for evaluation.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Index of the rule in the source program (for statistics).
    pub rule_index: usize,
    /// Head predicate.
    pub head_predicate: Symbol,
    head_slots: Vec<Slot>,
    /// Compiled body literals in source order.
    pub literals: Vec<CompiledLiteral>,
    /// Number of variable slots in the environment.
    pub env_size: usize,
    /// Positions (within the body) of literals whose predicate is an IDB predicate.
    pub idb_literal_positions: Vec<usize>,
}

/// The name of the successor builtin.
pub fn succ_symbol() -> Symbol {
    Symbol::intern("succ")
}

/// Greedily reorder `rule`'s body for evaluation, or return `None` when the source
/// order is already the greedy order.
///
/// At each step the next literal is the one with the most bound argument positions
/// (constants plus variables bound by already-placed literals) — the cheapest to match
/// under the left-to-right sideways-information-passing discipline — breaking ties by
/// smaller relation size in `db` (the plan-resolution-time selectivity estimate), then
/// by original position (stable). Conjunction over stored relations is commutative, so
/// any order derives the same facts — only the join cost changes.
///
/// Bodies containing the *virtual* `succ/2` builtin (enabled, and with no explicit
/// `succ` relation in `db`) are never reordered: the builtin is not a stored relation —
/// it matches nothing until one argument is bound — so whether it can evaluate depends
/// on its position relative to its binders, and moving it could change the computed
/// model rather than merely its cost. Reordering must stay a pure performance knob.
pub fn reorder_body(rule: &Rule, db: &Database, options: &EvalOptions) -> Option<Rule> {
    if rule.body.len() < 2 {
        return None;
    }
    let virtual_succ = |atom: &Atom| {
        options.enable_builtins
            && atom.predicate == succ_symbol()
            && db.relation(atom.predicate).is_none()
    };
    if rule.body.iter().any(virtual_succ) {
        return None;
    }
    let size_of = |p: Symbol| db.relation(p).map(Relation::len).unwrap_or(0);
    let mut bound: FxHashSet<Symbol> = FxHashSet::default();
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(rule.body.len());
    while !remaining.is_empty() {
        // (slot in `remaining`, (bound positions, relation size, original index)).
        let mut pick: Option<(usize, (usize, usize, usize))> = None;
        for (slot, &idx) in remaining.iter().enumerate() {
            let atom = &rule.body[idx];
            let bound_count = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            let key = (bound_count, size_of(atom.predicate), idx);
            let better = match &pick {
                None => true,
                Some((_, best)) => {
                    key.0 > best.0
                        || (key.0 == best.0
                            && (key.1 < best.1 || (key.1 == best.1 && key.2 < best.2)))
                }
            };
            if better {
                pick = Some((slot, key));
            }
        }
        let (slot, _) = pick.expect("non-empty remaining always yields a pick");
        let idx = remaining.remove(slot);
        for term in &rule.body[idx].terms {
            if let Term::Var(v) = term {
                bound.insert(*v);
            }
        }
        order.push(idx);
    }
    if order.iter().enumerate().all(|(i, &idx)| i == idx) {
        return None;
    }
    let body: Vec<Atom> = order.iter().map(|&idx| rule.body[idx].clone()).collect();
    Some(Rule::new(rule.head.clone(), body))
}

/// One worker's slice of a hash-partitioned firing: worker `shard` of `of` matches
/// only the outer (depth-0) rows that [`shard_of_row`] assigns to it, partitioning by
/// `columns` (a join-key column set whose values vary across the outer rows) or by
/// whole-row hash (`None`). The round driver picks the columns; any choice is exact —
/// it only affects which worker does which share of the work.
#[derive(Clone, Copy, Debug)]
pub struct ShardSpec<'a> {
    /// This worker's shard index, `0 <= shard < of`.
    pub shard: usize,
    /// Total number of shards.
    pub of: usize,
    /// Partition-key columns of the outer relation (`None` = whole-row hash).
    pub columns: Option<&'a [usize]>,
    /// Precomputed shard assignment of the outer relation's rows
    /// (`assign[row_id] = owning shard`), produced once per round by the driver so
    /// that workers test ownership with an array load instead of re-hashing every
    /// outer row (the PR 3 follow-on). Must agree with [`shard_of_row`] over
    /// `columns`/`of` — the round driver computes it with exactly that function.
    /// `None` falls back to hashing per row (probed outers, direct callers).
    pub assign: Option<&'a [u8]>,
}

impl ShardSpec<'_> {
    /// Does this shard own the outer row `id` with values `row`?
    #[inline]
    fn owns(&self, id: RowId, row: &[Const]) -> bool {
        match self.assign {
            Some(assign) => assign[id as usize] as usize == self.shard,
            None => shard_of_row(row, self.columns, self.of) == self.shard,
        }
    }
}

/// Everything a single `fire` needs that is constant over the descent.
struct FireCtx<'a> {
    db: &'a Database,
    delta: Option<(usize, &'a Relation)>,
    /// Access path for the delta-substituted literal (resolved against the delta
    /// relation, whose index ids are independent of the database relation's).
    delta_path: AccessPath,
    access: &'a RuleAccess,
}

impl CompiledRule {
    /// Compile `rule`. `is_idb` classifies predicates as IDB (has rules) for the
    /// semi-naive delta machinery.
    pub fn compile(
        rule_index: usize,
        rule: &Rule,
        is_idb: &dyn Fn(Symbol) -> bool,
        options: &EvalOptions,
    ) -> CompiledRule {
        let mut var_slots: FxHashMap<Symbol, usize> = FxHashMap::default();
        let mut bound_so_far: Vec<bool> = Vec::new();

        let slot_of = |term: &Term,
                       var_slots: &mut FxHashMap<Symbol, usize>,
                       bound: &mut Vec<bool>| match term {
            Term::Const(c) => Slot::Const(*c),
            Term::Var(v) => {
                let next = var_slots.len();
                let idx = *var_slots.entry(*v).or_insert(next);
                if idx == bound.len() {
                    bound.push(false);
                }
                Slot::Var(idx)
            }
        };

        let mut literals = Vec::with_capacity(rule.body.len());
        let mut idb_literal_positions = Vec::new();
        for (pos, atom) in rule.body.iter().enumerate() {
            let mut slots = Vec::with_capacity(atom.terms.len());
            let mut bound_positions = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                let slot = slot_of(term, &mut var_slots, &mut bound_so_far);
                match slot {
                    Slot::Const(_) => bound_positions.push(i),
                    Slot::Var(idx) => {
                        if bound_so_far[idx] {
                            bound_positions.push(i);
                        }
                    }
                }
                slots.push(slot);
            }
            // After matching this literal, all its variables are bound.
            for slot in &slots {
                if let Slot::Var(idx) = slot {
                    bound_so_far[*idx] = true;
                }
            }
            let is_succ = options.enable_builtins && atom.predicate == succ_symbol();
            if is_idb(atom.predicate) {
                idb_literal_positions.push(pos);
            }
            literals.push(CompiledLiteral {
                predicate: atom.predicate,
                slots,
                bound_positions,
                is_succ,
            });
        }

        let head_slots = rule
            .head
            .terms
            .iter()
            .map(|t| slot_of(t, &mut var_slots, &mut bound_so_far))
            .collect();

        CompiledRule {
            rule_index,
            head_predicate: rule.head.predicate,
            head_slots,
            literals,
            env_size: var_slots.len(),
            idb_literal_positions,
        }
    }

    /// Ask the database to maintain the indexes this rule's join will probe.
    pub fn ensure_indexes(&self, db: &mut Database, arities: &FxHashMap<Symbol, usize>) {
        for literal in &self.literals {
            if !literal.wants_index() {
                continue;
            }
            let arity = arities
                .get(&literal.predicate)
                .copied()
                .unwrap_or(literal.slots.len());
            db.ensure_relation(literal.predicate, arity)
                .ensure_index(&literal.bound_positions);
        }
    }

    /// Resolve the access path of the literal at `pos` against a concrete relation
    /// (used for the database relations at plan-resolution time and for the
    /// delta-substituted relation at fire time).
    pub fn access_for(&self, pos: usize, relation: Option<&Relation>) -> AccessPath {
        let literal = &self.literals[pos];
        if literal.bound_positions.is_empty() {
            return AccessPath::FullScan;
        }
        if literal.bound_positions.len() == literal.slots.len() {
            return AccessPath::Membership;
        }
        match relation.and_then(|r| {
            if r.arity() == literal.slots.len() {
                r.index_on(&literal.bound_positions)
            } else {
                None
            }
        }) {
            Some(id) => AccessPath::IndexProbe(id),
            None => AccessPath::FullScan,
        }
    }

    /// Resolve every body literal to a concrete access path against `db`. Call after
    /// [`CompiledRule::ensure_indexes`]; the result stays valid as long as no *new*
    /// indexes are created on the involved relations (insertions and `clear` are
    /// fine — [`IndexId`]s are stable under both).
    pub fn resolve_access(&self, db: &Database) -> RuleAccess {
        RuleAccess {
            paths: (0..self.literals.len())
                .map(|pos| self.access_for(pos, db.relation(self.literals[pos].predicate)))
                .collect(),
        }
    }

    /// A fresh scratch for this rule: all buffers preallocated to their maximal size.
    pub fn scratch(&self) -> JoinScratch {
        let max_arity = self
            .literals
            .iter()
            .map(|l| l.slots.len())
            .max()
            .unwrap_or(0);
        JoinScratch {
            env: vec![None; self.env_size],
            head_buf: Vec::with_capacity(self.head_slots.len()),
            key_buf: Vec::with_capacity(max_arity),
            unbind: Vec::with_capacity(self.env_size),
            poll: None,
            counters: JoinCounters::default(),
        }
    }

    /// Instantiate the head for a completed environment.
    fn head_tuple(&self, env: &[Option<Const>], out: &mut Vec<Const>) {
        out.clear();
        for slot in &self.head_slots {
            match slot {
                Slot::Const(c) => out.push(*c),
                Slot::Var(idx) => {
                    out.push(env[*idx].expect("unbound head variable at firing time"))
                }
            }
        }
    }

    /// Enumerate all instantiations of the body against `db`, calling `emit` with the
    /// instantiated head tuple for each. Convenience wrapper that resolves access
    /// paths and allocates a scratch per call; hot paths (the evaluators) resolve once
    /// and use [`CompiledRule::fire_with`].
    ///
    /// Returns the number of successful body instantiations.
    pub fn fire(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        emit: &mut dyn FnMut(&[Const]),
    ) -> usize {
        let access = self.resolve_access(db);
        let mut scratch = self.scratch();
        self.fire_with(db, delta, &access, &mut scratch, emit)
    }

    /// Enumerate all instantiations of the body against `db` using pre-resolved
    /// access paths and a reusable scratch — the allocation-free steady-state path.
    /// If `delta` is `Some((position, relation))`, the literal at `position` is
    /// matched against `relation` instead of the database relation for its predicate
    /// (the semi-naive delta); its access path is resolved against the delta relation
    /// here, so indexed deltas are probed.
    ///
    /// Returns the number of successful body instantiations.
    pub fn fire_with(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        access: &RuleAccess,
        scratch: &mut JoinScratch,
        emit: &mut dyn FnMut(&[Const]),
    ) -> usize {
        debug_assert_eq!(access.paths.len(), self.literals.len());
        debug_assert!(
            scratch.env.iter().all(Option::is_none),
            "scratch environment must be clean between fires"
        );
        let delta_path = match delta {
            Some((pos, relation)) => self.access_for(pos, Some(relation)),
            None => AccessPath::FullScan,
        };
        let ctx = FireCtx {
            db,
            delta,
            delta_path,
            access,
        };
        let mut count = 0usize;
        self.join(&ctx, 0, scratch, emit, &mut count);
        count
    }

    /// Fire one shard of a hash-partitioned firing: like [`CompiledRule::fire_with`],
    /// but the depth-0 (outer) rows are filtered to those [`ShardSpec::owns`] says
    /// belong to this worker, and `emit` additionally receives the outer row id — the
    /// insertion key the round driver merge-sorts per-worker out-buffers by, so the
    /// merged staging relation reproduces the single-thread emission order exactly.
    ///
    /// The union of all shards' emissions is exactly the `fire_with` emission set:
    /// every outer row is owned by exactly one shard, and within a shard the outer
    /// rows are enumerated in the same ascending order `fire_with` uses. Firings with
    /// no partitionable outer enumeration (empty bodies, a fully bound or builtin
    /// first literal) run entirely on shard 0 with outer key 0. Depth-0 access
    /// counters are recorded by shard 0 only, so counter totals match the
    /// single-thread run; inner-depth counters split exactly across shards.
    ///
    /// NOTE: the depth-0 dispatch below intentionally mirrors [`CompiledRule::join`]'s
    /// (delta-path selection, arity check, key hashing, counter attribution) rather
    /// than sharing one body — folding shard filtering and the outer-id-carrying
    /// emit into the sequential hot path would tax every single-threaded join. Any
    /// change to either copy must keep the other in lockstep; the
    /// `assert_partition_matches_fire` test harness pins them against each other
    /// across every access path, worker count, and partition-column choice.
    pub fn fire_partition(
        &self,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        access: &RuleAccess,
        scratch: &mut JoinScratch,
        shard: &ShardSpec<'_>,
        emit: &mut dyn FnMut(RowId, &[Const]),
    ) -> usize {
        debug_assert_eq!(access.paths.len(), self.literals.len());
        debug_assert!(
            scratch.env.iter().all(Option::is_none),
            "scratch environment must be clean between fires"
        );
        let delta_path = match delta {
            Some((pos, relation)) => self.access_for(pos, Some(relation)),
            None => AccessPath::FullScan,
        };
        let ctx = FireCtx {
            db,
            delta,
            delta_path,
            access,
        };
        let mut count = 0usize;

        let unpartitionable = self.literals.is_empty()
            || (self.literals[0].is_succ && db.relation(self.literals[0].predicate).is_none());
        if unpartitionable {
            if shard.shard == 0 {
                let mut inner = |tuple: &[Const]| emit(0, tuple);
                self.join(&ctx, 0, scratch, &mut inner, &mut count);
            }
            return count;
        }

        let literal = &self.literals[0];
        let use_delta = matches!(ctx.delta, Some((0, _)));
        let (relation, path): (&Relation, AccessPath) = if use_delta {
            (ctx.delta.expect("delta checked above").1, ctx.delta_path)
        } else {
            match ctx.db.relation(literal.predicate) {
                Some(rel) => (rel, ctx.access.paths[0]),
                None => return 0,
            }
        };
        if relation.arity() != literal.slots.len() {
            return 0;
        }

        match path {
            AccessPath::Membership => {
                // A single fully bound candidate row: no enumeration to split.
                if shard.shard == 0 {
                    scratch.counters.membership_checks += 1;
                    scratch.key_buf.clear();
                    for slot in &literal.slots {
                        match slot {
                            Slot::Const(c) => scratch.key_buf.push(*c),
                            Slot::Var(idx) => scratch
                                .key_buf
                                .push(scratch.env[*idx].expect("bound position has a value")),
                        }
                    }
                    if relation.contains(&scratch.key_buf) {
                        let mut inner = |tuple: &[Const]| emit(0, tuple);
                        self.join(&ctx, 1, scratch, &mut inner, &mut count);
                    }
                }
            }
            AccessPath::IndexProbe(index) => {
                if shard.shard == 0 {
                    scratch.counters.index_probes += 1;
                }
                // At depth 0 the bound positions can only hold constants.
                let mut hasher = KeyHasher::new();
                for &i in &literal.bound_positions {
                    let value = match &literal.slots[i] {
                        Slot::Const(c) => *c,
                        Slot::Var(idx) => scratch.env[*idx].expect("bound position has a value"),
                    };
                    hasher.push(&value);
                }
                let candidates = relation.probe_candidates(index, hasher.finish());
                for &row_id in candidates {
                    let row = relation.row(row_id);
                    if !shard.owns(row_id, row) {
                        continue;
                    }
                    let mut inner = |tuple: &[Const]| emit(row_id, tuple);
                    self.bind_and_descend(&ctx, 0, row, scratch, &mut inner, &mut count);
                }
            }
            AccessPath::FullScan => {
                if shard.shard == 0 {
                    scratch.counters.full_scans += 1;
                }
                for row_id in 0..relation.len() as RowId {
                    let row = relation.row(row_id);
                    if !shard.owns(row_id, row) {
                        continue;
                    }
                    let mut inner = |tuple: &[Const]| emit(row_id, tuple);
                    self.bind_and_descend(&ctx, 0, row, scratch, &mut inner, &mut count);
                }
            }
        }
        count
    }

    /// Bind the row against the literal's slots, recurse if consistent, and restore
    /// the environment. Collision candidates from hash buckets are rejected here (a
    /// row that does not match the bound slots fails the comparison), so probes need
    /// no separate verification pass.
    ///
    /// This is also the cooperative governance site: called once per candidate
    /// row at every join depth, so one countdown here bounds how many rows any
    /// join enumerates between polls, whatever the rule shape.
    #[inline]
    fn bind_and_descend(
        &self,
        ctx: &FireCtx<'_>,
        depth: usize,
        row: &[Const],
        scratch: &mut JoinScratch,
        emit: &mut dyn FnMut(&[Const]),
        count: &mut usize,
    ) {
        if let Some(poll) = scratch.poll.as_mut() {
            if poll.tick(&mut scratch.counters.cancel_checks) {
                return;
            }
        }
        let literal = &self.literals[depth];
        let base = scratch.unbind.len();
        let mut consistent = true;
        for (i, slot) in literal.slots.iter().enumerate() {
            match slot {
                Slot::Const(c) => {
                    if row[i] != *c {
                        consistent = false;
                        break;
                    }
                }
                Slot::Var(idx) => match scratch.env[*idx] {
                    Some(value) => {
                        if row[i] != value {
                            consistent = false;
                            break;
                        }
                    }
                    None => {
                        scratch.env[*idx] = Some(row[i]);
                        scratch.unbind.push(*idx);
                    }
                },
            }
        }
        if consistent {
            self.join(ctx, depth + 1, scratch, emit, count);
        }
        for k in base..scratch.unbind.len() {
            let idx = scratch.unbind[k];
            scratch.env[idx] = None;
        }
        scratch.unbind.truncate(base);
    }

    fn join(
        &self,
        ctx: &FireCtx<'_>,
        depth: usize,
        scratch: &mut JoinScratch,
        emit: &mut dyn FnMut(&[Const]),
        count: &mut usize,
    ) {
        if depth == self.literals.len() {
            *count += 1;
            self.head_tuple(&scratch.env, &mut scratch.head_buf);
            emit(&scratch.head_buf);
            return;
        }
        let literal = &self.literals[depth];

        // Builtin successor: succ(X, Y) with X bound to an integer binds/checks Y=X+1;
        // with only Y bound it binds/checks X=Y-1.
        if literal.is_succ && ctx.db.relation(literal.predicate).is_none() {
            self.join_succ(ctx, depth, scratch, emit, count);
            return;
        }

        let use_delta = matches!(ctx.delta, Some((pos, _)) if pos == depth);
        let (relation, path): (&Relation, AccessPath) = if use_delta {
            (ctx.delta.expect("delta checked above").1, ctx.delta_path)
        } else {
            match ctx.db.relation(literal.predicate) {
                Some(rel) => (rel, ctx.access.paths[depth]),
                None => return, // empty relation: no matches
            }
        };
        if relation.arity() != literal.slots.len() {
            return;
        }

        match path {
            AccessPath::Membership => {
                scratch.counters.membership_checks += 1;
                // All slots are bound: materialize the expected tuple into the key
                // buffer and test membership.
                scratch.key_buf.clear();
                for slot in &literal.slots {
                    match slot {
                        Slot::Const(c) => scratch.key_buf.push(*c),
                        Slot::Var(idx) => scratch
                            .key_buf
                            .push(scratch.env[*idx].expect("bound position has a value")),
                    }
                }
                if relation.contains(&scratch.key_buf) {
                    self.join(ctx, depth + 1, scratch, emit, count);
                }
            }
            AccessPath::IndexProbe(index) => {
                scratch.counters.index_probes += 1;
                // Hash the bound values straight out of the slots/environment — no key
                // tuple is materialized. `bound_positions` is sorted, matching the
                // index's normalized column order.
                let mut hasher = KeyHasher::new();
                for &i in &literal.bound_positions {
                    let value = match &literal.slots[i] {
                        Slot::Const(c) => *c,
                        Slot::Var(idx) => scratch.env[*idx].expect("bound position has a value"),
                    };
                    hasher.push(&value);
                }
                let candidates = relation.probe_candidates(index, hasher.finish());
                for &row_id in candidates {
                    self.bind_and_descend(ctx, depth, relation.row(row_id), scratch, emit, count);
                }
            }
            AccessPath::FullScan => {
                scratch.counters.full_scans += 1;
                for row_id in 0..relation.len() as RowId {
                    self.bind_and_descend(ctx, depth, relation.row(row_id), scratch, emit, count);
                }
            }
        }
    }

    fn join_succ(
        &self,
        ctx: &FireCtx<'_>,
        depth: usize,
        scratch: &mut JoinScratch,
        emit: &mut dyn FnMut(&[Const]),
        count: &mut usize,
    ) {
        let literal = &self.literals[depth];
        if literal.slots.len() != 2 {
            return;
        }
        let value_of = |slot: &Slot, env: &[Option<Const>]| match slot {
            Slot::Const(c) => Some(*c),
            Slot::Var(idx) => env[*idx],
        };
        let first = value_of(&literal.slots[0], &scratch.env);
        let second = value_of(&literal.slots[1], &scratch.env);
        let pair: Option<(Const, Const)> = match (first, second) {
            (Some(Const::Int(x)), _) => Some((Const::Int(x), Const::Int(x + 1))),
            (None, Some(Const::Int(y))) => Some((Const::Int(y - 1), Const::Int(y))),
            _ => None, // unbound or non-integer: no matches
        };
        let Some((x, y)) = pair else { return };
        // Check/bind both positions against (x, y) as if it were the only matching
        // row of a virtual relation — the one place the binding protocol lives.
        self.bind_and_descend(ctx, depth, &[x, y], scratch, emit, count);
    }
}

/// Build an atom from a predicate and tuple (diagnostic helper used by evaluators).
pub fn fact_atom(predicate: Symbol, tuple: &[Const]) -> Atom {
    Atom::new(predicate, tuple.iter().map(|&c| Term::Const(c)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn compile(rule_text: &str) -> CompiledRule {
        let rule = parse_rule(rule_text).unwrap();
        CompiledRule::compile(0, &rule, &|_| false, &EvalOptions::default())
    }

    #[test]
    fn bound_positions_follow_left_to_right_sip() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        // In e(X, W): nothing bound yet.
        assert!(compiled.literals[0].bound_positions.is_empty());
        // In t(W, Y): W was bound by e(X, W).
        assert_eq!(compiled.literals[1].bound_positions, vec![0]);
        assert_eq!(compiled.env_size, 3);
    }

    #[test]
    fn constants_count_as_bound() {
        let compiled = compile("q(Y) :- t(5, Y).");
        assert_eq!(compiled.literals[0].bound_positions, vec![0]);
    }

    #[test]
    fn fire_joins_two_literals() {
        let compiled = compile("t(X, Y) :- e(X, W), f(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("e", &[c(1), c(3)]);
        db.add_fact("f", &[c(2), c(10)]);
        db.add_fact("f", &[c(3), c(11)]);
        db.add_fact("f", &[c(4), c(12)]);
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |tuple| results.push(tuple.to_vec()));
        assert_eq!(fired, 2);
        results.sort();
        assert_eq!(results, vec![vec![c(1), c(10)], vec![c(1), c(11)]]);
    }

    #[test]
    fn fire_respects_repeated_variables() {
        let compiled = compile("loop(X) :- e(X, X).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(1)]);
        db.add_fact("e", &[c(1), c(2)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |tuple| results.push(tuple.to_vec()));
        assert_eq!(results, vec![vec![c(1)]]);
    }

    #[test]
    fn fire_uses_delta_for_designated_literal() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("t", &[c(2), c(3)]);
        db.add_fact("t", &[c(2), c(4)]);
        // Delta contains only one of the two t facts.
        let mut delta = Relation::new(2);
        delta.insert(&[c(2), c(3)]);
        let mut results = Vec::new();
        compiled.fire(&db, Some((1, &delta)), &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(1), c(3)]]);
    }

    #[test]
    fn indexed_delta_is_probed() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        for i in 0..10i64 {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        let mut delta = Relation::new(2);
        delta.ensure_index(&[0]);
        delta.insert(&[c(5), c(99)]);
        let access = compiled.resolve_access(&db);
        let mut scratch = compiled.scratch();
        let mut results = Vec::new();
        compiled.fire_with(&db, Some((1, &delta)), &access, &mut scratch, &mut |t| {
            results.push(t.to_vec())
        });
        assert_eq!(results, vec![vec![c(4), c(99)]]);
        // One scan of e (depth 0) and one probe of the delta per e-row.
        assert_eq!(scratch.counters.full_scans, 1);
        assert_eq!(scratch.counters.index_probes, 10);
    }

    #[test]
    fn unindexed_delta_falls_back_to_scan() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        let mut delta = Relation::new(2);
        delta.insert(&[c(2), c(3)]);
        let access = compiled.resolve_access(&db);
        let mut scratch = compiled.scratch();
        let mut results = Vec::new();
        compiled.fire_with(&db, Some((1, &delta)), &access, &mut scratch, &mut |t| {
            results.push(t.to_vec())
        });
        assert_eq!(results, vec![vec![c(1), c(3)]]);
        assert_eq!(scratch.counters.index_probes, 0);
        assert_eq!(scratch.counters.full_scans, 2, "e scan + delta scan");
    }

    #[test]
    fn scratch_is_reusable_across_fires() {
        let compiled = compile("t(X, Y) :- e(X, W), f(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("f", &[c(2), c(10)]);
        let access = compiled.resolve_access(&db);
        let mut scratch = compiled.scratch();
        for _ in 0..3 {
            let mut results = Vec::new();
            let fired = compiled.fire_with(&db, None, &access, &mut scratch, &mut |t| {
                results.push(t.to_vec())
            });
            assert_eq!(fired, 1);
            assert_eq!(results, vec![vec![c(1), c(10)]]);
        }
    }

    #[test]
    fn access_paths_resolve_per_literal() {
        let compiled = compile("p(X) :- e(X, W), f(W, X), g(X, W).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("f", &[c(2), c(1)]);
        db.add_fact("g", &[c(1), c(2)]);
        let mut arities = FxHashMap::default();
        for p in ["e", "f", "g"] {
            arities.insert(Symbol::intern(p), 2);
        }
        compiled.ensure_indexes(&mut db, &arities);
        let access = compiled.resolve_access(&db);
        // e(X, W): nothing bound -> scan; f(W, X): both bound -> membership;
        // g(X, W): both bound -> membership.
        assert_eq!(access.paths[0], AccessPath::FullScan);
        assert_eq!(access.paths[1], AccessPath::Membership);
        assert_eq!(access.paths[2], AccessPath::Membership);

        let two = compile("p(Y) :- a(X), b(X, Y).");
        let mut db = Database::new();
        db.add_fact("a", &[c(1)]);
        db.add_fact("b", &[c(1), c(2)]);
        let mut arities = FxHashMap::default();
        arities.insert(Symbol::intern("a"), 1);
        arities.insert(Symbol::intern("b"), 2);
        two.ensure_indexes(&mut db, &arities);
        let access = two.resolve_access(&db);
        assert_eq!(access.paths[0], AccessPath::FullScan);
        assert!(matches!(access.paths[1], AccessPath::IndexProbe(_)));
        let mut results = Vec::new();
        two.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(2)]]);
    }

    #[test]
    fn fire_with_constants_in_head() {
        let compiled = compile("m(5).");
        let db = Database::new();
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(fired, 1);
        assert_eq!(results, vec![vec![c(5)]]);
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let compiled = compile("p(X) :- q(X).");
        let db = Database::new();
        let mut results = Vec::new();
        assert_eq!(
            compiled.fire(&db, None, &mut |t| results.push(t.to_vec())),
            0
        );
        assert!(results.is_empty());
    }

    #[test]
    fn arity_mismatch_is_no_match_not_a_panic() {
        let compiled = compile("p(X) :- q(X).");
        let mut db = Database::new();
        db.add_fact("q", &[c(1), c(2)]); // q stored with arity 2, literal has arity 1
        let mut results = Vec::new();
        assert_eq!(
            compiled.fire(&db, None, &mut |t| results.push(t.to_vec())),
            0
        );
    }

    #[test]
    fn succ_builtin_binds_forward_and_backward() {
        let compiled = compile("next(Y) :- start(X), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("start", &[c(7)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(8)]]);

        let compiled = compile("prev(X) :- end(Y), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("end", &[c(7)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(6)]]);
    }

    #[test]
    fn succ_builtin_checks_when_both_bound() {
        let compiled = compile("ok :- a(X), b(Y), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("a", &[c(1)]);
        db.add_fact("b", &[c(2)]);
        db.add_fact("b", &[c(5)]);
        let mut results = Vec::new();
        let fired = compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(fired, 1, "only succ(1,2) holds");
    }

    #[test]
    fn explicit_succ_relation_overrides_builtin() {
        let compiled = compile("p(Y) :- start(X), succ(X, Y).");
        let mut db = Database::new();
        db.add_fact("start", &[c(1)]);
        db.add_fact("succ", &[c(1), c(100)]);
        let mut results = Vec::new();
        compiled.fire(&db, None, &mut |t| results.push(t.to_vec()));
        assert_eq!(results, vec![vec![c(100)]]);
    }

    /// Reference check: the union of all shards' emissions equals `fire_with`'s, with
    /// outer keys that reconstruct the sequential emission order — exercised both
    /// with per-row hashing and with a precomputed assignment vector (the two
    /// ownership paths must be indistinguishable).
    fn assert_partition_matches_fire(
        compiled: &CompiledRule,
        db: &Database,
        delta: Option<(usize, &Relation)>,
        workers: usize,
        columns: Option<&[usize]>,
    ) {
        let access = compiled.resolve_access(db);
        let mut scratch = compiled.scratch();
        let mut sequential = Vec::new();
        compiled.fire_with(db, delta, &access, &mut scratch, &mut |t| {
            sequential.push(t.to_vec())
        });
        let seq_counters = scratch.counters;

        // A precomputed assignment for the scanned-outer case, built with the same
        // shard function the hashing path uses.
        let outer_assign: Option<Vec<u8>> = compiled.literals.first().and_then(|literal| {
            if !literal.bound_positions.is_empty() {
                return None;
            }
            let relation = match delta {
                Some((0, rel)) => rel,
                _ => db.relation(literal.predicate)?,
            };
            Some(
                (0..relation.len() as RowId)
                    .map(|id| shard_of_row(relation.row(id), columns, workers) as u8)
                    .collect(),
            )
        });

        for assign in [None, outer_assign.as_deref()] {
            let mut merged: Vec<(RowId, Vec<Const>)> = Vec::new();
            let mut par_counters = JoinCounters::default();
            for w in 0..workers {
                let mut shard_scratch = compiled.scratch();
                let shard = ShardSpec {
                    shard: w,
                    of: workers,
                    columns,
                    assign,
                };
                compiled.fire_partition(
                    db,
                    delta,
                    &access,
                    &mut shard_scratch,
                    &shard,
                    &mut |outer, t| merged.push((outer, t.to_vec())),
                );
                par_counters.index_probes += shard_scratch.counters.index_probes;
                par_counters.full_scans += shard_scratch.counters.full_scans;
                par_counters.membership_checks += shard_scratch.counters.membership_checks;
            }
            // Stable sort by the outer insertion key reconstructs the sequential order.
            merged.sort_by_key(|(outer, _)| *outer);
            let tuples: Vec<Vec<Const>> = merged.into_iter().map(|(_, t)| t).collect();
            assert_eq!(
                tuples,
                sequential,
                "partitioned firing must match fire_with (assign: {})",
                if assign.is_some() {
                    "precomputed"
                } else {
                    "hashed"
                }
            );
            assert_eq!(par_counters.index_probes, seq_counters.index_probes);
            assert_eq!(par_counters.full_scans, seq_counters.full_scans);
            assert_eq!(
                par_counters.membership_checks,
                seq_counters.membership_checks
            );
        }
    }

    #[test]
    fn partitioned_firing_reproduces_fire_with() {
        let compiled = compile("t(X, Y) :- e(X, W), f(W, Y).");
        let mut db = Database::new();
        for i in 0..30i64 {
            db.add_fact("e", &[c(i % 6), c(i)]);
            db.add_fact("f", &[c(i), c(i * 2)]);
        }
        let mut arities = FxHashMap::default();
        arities.insert(Symbol::intern("e"), 2);
        arities.insert(Symbol::intern("f"), 2);
        compiled.ensure_indexes(&mut db, &arities);
        for workers in [1usize, 2, 3, 8] {
            assert_partition_matches_fire(&compiled, &db, None, workers, None);
            assert_partition_matches_fire(&compiled, &db, None, workers, Some(&[0]));
        }
    }

    #[test]
    fn partitioned_delta_firing_reproduces_fire_with() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        for i in 0..20i64 {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        // Delta at the recursive literal: the outer e-scan is partitioned.
        let mut delta = Relation::new(2);
        delta.ensure_index(&[0]);
        for i in 0..20i64 {
            delta.insert(&[c(i + 1), c(99)]);
        }
        for workers in [2usize, 4] {
            assert_partition_matches_fire(&compiled, &db, Some((1, &delta)), workers, None);
        }
        // Delta at position 0 (the reordered SIP shape): the delta itself is sharded.
        let exit = compile("t(X, Y) :- d(X, Y).");
        let mut d = Relation::new(2);
        for i in 0..20i64 {
            d.insert(&[c(i), c(i + 1)]);
        }
        for workers in [2usize, 4] {
            assert_partition_matches_fire(&exit, &db, Some((0, &d)), workers, None);
        }
    }

    #[test]
    fn probed_outer_rows_distribute_under_row_hash() {
        // A constant-first literal probes at depth 0; all candidates share the probe
        // key, so only whole-row hashing (columns: None) spreads them across shards.
        let compiled = compile("q(Y) :- t(5, Y).");
        let mut db = Database::new();
        for i in 0..40i64 {
            db.add_fact("t", &[c(5), c(i)]);
            db.add_fact("t", &[c(6), c(i)]);
        }
        let mut arities = FxHashMap::default();
        arities.insert(Symbol::intern("t"), 2);
        compiled.ensure_indexes(&mut db, &arities);
        assert_partition_matches_fire(&compiled, &db, None, 4, None);
        let access = compiled.resolve_access(&db);
        let mut nonempty_shards = 0usize;
        for w in 0..4usize {
            let mut scratch = compiled.scratch();
            let shard = ShardSpec {
                shard: w,
                of: 4,
                columns: None,
                assign: None,
            };
            let n =
                compiled.fire_partition(&db, None, &access, &mut scratch, &shard, &mut |_, _| {});
            if n > 0 {
                nonempty_shards += 1;
            }
        }
        assert!(
            nonempty_shards > 1,
            "row-hash must spread probe candidates over multiple shards"
        );
    }

    #[test]
    fn unpartitionable_firings_run_on_shard_zero_only() {
        // Empty body: the fact rule fires once, from shard 0.
        let fact = compile("m(5).");
        let db = Database::new();
        let access = fact.resolve_access(&db);
        let mut total = 0usize;
        for w in 0..4usize {
            let mut scratch = fact.scratch();
            let shard = ShardSpec {
                shard: w,
                of: 4,
                columns: None,
                assign: None,
            };
            total += fact.fire_partition(&db, None, &access, &mut scratch, &shard, &mut |o, t| {
                assert_eq!(o, 0);
                assert_eq!(t, [c(5)]);
            });
        }
        assert_eq!(total, 1);

        // Builtin-first body (no binder before it): no shard emits anything, like
        // fire_with.
        let succ_first = compile("p(Y) :- succ(X, Y), q(X).");
        let mut db = Database::new();
        db.add_fact("q", &[c(1)]);
        let access = succ_first.resolve_access(&db);
        for w in 0..2usize {
            let mut scratch = succ_first.scratch();
            let shard = ShardSpec {
                shard: w,
                of: 2,
                columns: None,
                assign: None,
            };
            let n =
                succ_first.fire_partition(&db, None, &access, &mut scratch, &shard, &mut |_, _| {});
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn reorder_promotes_small_bound_relations() {
        let rule = parse_rule("p(X, Y) :- big(X, W), small(W, Y).").unwrap();
        let mut db = Database::new();
        for i in 0..50i64 {
            db.add_fact("big", &[c(i), c(i + 1)]);
        }
        db.add_fact("small", &[c(1), c(2)]);
        let reordered = reorder_body(&rule, &db, &EvalOptions::default()).expect("order changes");
        assert_eq!(reordered.body[0].predicate, Symbol::intern("small"));
        assert_eq!(reordered.body[1].predicate, Symbol::intern("big"));
        assert_eq!(reordered.head, rule.head);

        // Once `small` is placed, `big(X, W)` has W bound at position 1 — the SIP
        // chain survives the reorder.
        let compiled = CompiledRule::compile(0, &reordered, &|_| false, &EvalOptions::default());
        assert_eq!(compiled.literals[1].bound_positions, vec![1]);
    }

    #[test]
    fn reorder_prefers_bound_positions_over_size() {
        // q(5, Y) has a constant: it goes first even though it is the bigger relation.
        let rule = parse_rule("p(Y, Z) :- r(Y, Z), q(5, Y).").unwrap();
        let mut db = Database::new();
        for i in 0..50i64 {
            db.add_fact("q", &[c(i % 7), c(i)]);
        }
        db.add_fact("r", &[c(1), c(2)]);
        let reordered = reorder_body(&rule, &db, &EvalOptions::default()).expect("order changes");
        assert_eq!(reordered.body[0].predicate, Symbol::intern("q"));
    }

    #[test]
    fn builtin_bodies_are_never_reordered() {
        // The virtual succ builtin matches nothing until an argument is bound, so
        // moving it (or its binders) could change the computed model — the whole
        // body is left alone. `p(M) :- succ(N, M), counter(N).` derives nothing in
        // source order; reordering counter first would make it derive facts, which
        // would turn a performance knob into a semantic one.
        let rule = parse_rule("p(M) :- succ(N, M), counter(N).").unwrap();
        let mut db = Database::new();
        for i in 0..10i64 {
            db.add_fact("counter", &[c(i)]);
        }
        assert!(reorder_body(&rule, &db, &EvalOptions::default()).is_none());

        // With an explicit succ relation, succ is an ordinary stored predicate and
        // the body reorders freely: counter (2 rows) is promoted over succ (10).
        let mut db = Database::new();
        db.add_fact("counter", &[c(0)]);
        db.add_fact("counter", &[c(1)]);
        for i in 0..10i64 {
            db.add_fact("succ", &[c(i), c(i + 1)]);
        }
        let reordered = reorder_body(&rule, &db, &EvalOptions::default()).expect("order changes");
        assert_eq!(reordered.body[0].predicate, Symbol::intern("counter"));
    }

    #[test]
    fn effective_threads_resolves_and_clamps() {
        let explicit = EvalOptions {
            threads: 3,
            ..EvalOptions::default()
        };
        assert_eq!(explicit.effective_threads(), 3);
        let auto = EvalOptions {
            threads: 0,
            ..EvalOptions::default()
        };
        assert!(auto.effective_threads() >= 1);
        // A typo'd worker count must not try to spawn half a million OS threads.
        let absurd = EvalOptions {
            threads: 500_000,
            ..EvalOptions::default()
        };
        assert_eq!(absurd.effective_threads(), MAX_WORKERS);
    }

    #[test]
    fn reorder_is_a_no_op_when_order_is_already_greedy() {
        let rule = parse_rule("t(X, Y) :- e(X, Y).").unwrap();
        let db = Database::new();
        assert!(reorder_body(&rule, &db, &EvalOptions::default()).is_none());
        let two = parse_rule("p(X, Y) :- a(X, W), b(W, Y).").unwrap();
        let mut db = Database::new();
        db.add_fact("a", &[c(1), c(2)]);
        db.add_fact("b", &[c(2), c(3)]);
        db.add_fact("b", &[c(2), c(4)]);
        // a is smaller and nothing is bound: original order is the greedy order.
        assert!(reorder_body(&two, &db, &EvalOptions::default()).is_none());
    }

    #[test]
    fn ensure_indexes_creates_probeable_indexes() {
        let compiled = compile("t(X, Y) :- e(X, W), t(W, Y).");
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("t", &[c(2), c(3)]);
        let mut arities = FxHashMap::default();
        arities.insert(Symbol::intern("e"), 2);
        arities.insert(Symbol::intern("t"), 2);
        compiled.ensure_indexes(&mut db, &arities);
        // t is probed on its first column.
        assert!(db
            .relation(Symbol::intern("t"))
            .unwrap()
            .probe(&[0], &[c(2)])
            .is_some());
    }
}
