//! Naive bottom-up evaluation: repeatedly apply every rule to the whole database until
//! no new fact is derived.
//!
//! Naive evaluation is quadratically redundant compared to semi-naive evaluation but is
//! the simplest correct fixpoint computation; it serves as the reference implementation
//! the semi-naive evaluator is tested against, and as the evaluation core of the
//! uniform-equivalence check used by the §5 optimizations.

use crate::ast::Program;
use crate::fx::FxHashMap;
use crate::storage::{Database, Relation};
use crate::symbol::Symbol;

use super::join::{CompiledRule, EvalOptions};
use super::stats::EvalStats;
use super::{arity_map, EvalError, EvalResult};

/// Evaluate `program` over `edb` with naive iteration.
pub fn naive_evaluate(
    program: &Program,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    crate::validate::check_program(program).map_err(EvalError::Invalid)?;

    let idb: std::collections::BTreeSet<Symbol> = program.idb_predicates();
    let arities = arity_map(program, edb);
    let mut db = edb.clone();
    for &p in &idb {
        let arity = arities.get(&p).copied().unwrap_or(0);
        db.ensure_relation(p, arity);
    }

    let compiled: Vec<CompiledRule> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| CompiledRule::compile(i, r, &|p| idb.contains(&p), options))
        .collect();
    for rule in &compiled {
        rule.ensure_indexes(&mut db, &arities);
    }

    let mut stats = EvalStats::new(program.rules.len());
    // Resolve access paths once and reuse one scratch per rule across every pass.
    stats.scratch_allocs += compiled.len();
    let mut runtimes: Vec<_> = compiled
        .iter()
        .map(|rule| (rule.resolve_access(&db), rule.scratch()))
        .collect();
    loop {
        if stats.iterations >= options.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        stats.iterations += 1;
        let mut staging: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for (rule, (access, scratch)) in compiled.iter().zip(runtimes.iter_mut()) {
            let head_arity = arities.get(&rule.head_predicate).copied().unwrap_or(0);
            let staged = staging
                .entry(rule.head_predicate)
                .or_insert_with(|| Relation::new(head_arity));
            let head = db.relation(rule.head_predicate);
            rule.fire_with(&db, None, access, scratch, &mut |tuple| {
                let known = head.map(|r| r.contains(tuple)).unwrap_or(false);
                let is_new = !known && staged.insert(tuple);
                stats.record_inference(rule.rule_index, rule.head_predicate, is_new);
            });
            stats.absorb_join_counters(std::mem::take(&mut scratch.counters));
        }
        let mut any_new = false;
        for (pred, staged) in staging {
            let arity = staged.arity();
            let added = db.ensure_relation(pred, arity).merge_from(&staged);
            if added > 0 {
                any_new = true;
            }
        }
        if !any_new {
            break;
        }
    }

    Ok(EvalResult {
        database: db,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::parser::{parse_program, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn chain_edb(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        db
    }

    #[test]
    fn computes_transitive_closure_of_a_chain() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let result = naive_evaluate(&program, &chain_edb(5), &EvalOptions::default()).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 transitive-closure pairs.
        assert_eq!(result.database.count("t"), 15);
        let q = parse_query("t(0, Y)").unwrap();
        assert_eq!(result.database.answers(&q).len(), 5);
    }

    #[test]
    fn facts_in_program_are_materialized() {
        let program = parse_program("m(5).\nm(W) :- m(X), e(X, W).")
            .unwrap()
            .program;
        let mut edb = Database::new();
        edb.add_fact("e", &[c(5), c(6)]);
        edb.add_fact("e", &[c(6), c(7)]);
        edb.add_fact("e", &[c(9), c(10)]);
        let result = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let m = result.database.relation(Symbol::intern("m")).unwrap();
        assert_eq!(m.to_sorted_vec(), vec![vec![c(5)], vec![c(6)], vec![c(7)]]);
    }

    #[test]
    fn stats_count_iterations_and_inferences() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let result = naive_evaluate(&program, &chain_edb(4), &EvalOptions::default()).unwrap();
        assert!(
            result.stats.iterations >= 4,
            "chain of length 4 needs >= 4 passes"
        );
        assert!(result.stats.inferences >= result.stats.facts_derived);
        assert_eq!(result.stats.facts_for(Symbol::intern("t")), 10);
    }

    #[test]
    fn unsafe_program_is_rejected() {
        let program = parse_program("p(X, Y) :- e(X).").unwrap().program;
        let err = naive_evaluate(&program, &Database::new(), &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Invalid(_)));
    }

    #[test]
    fn iteration_limit_is_enforced() {
        // counter(N1) :- counter(N), succ(N, N1). grows forever with the succ builtin.
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 10,
            ..EvalOptions::default()
        };
        let err = naive_evaluate(&program, &Database::new(), &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 10 }));
    }

    #[test]
    fn empty_program_returns_edb() {
        let program = Program::new();
        let edb = chain_edb(3);
        let result = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(result.database.count("e"), 3);
        assert_eq!(result.stats.facts_derived, 0);
    }
}
