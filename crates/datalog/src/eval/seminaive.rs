//! Semi-naive bottom-up evaluation.
//!
//! The standard delta-driven fixpoint: each IDB predicate keeps a `full` relation and a
//! `delta` of facts derived in the previous round; in each round a rule with `k` IDB
//! body literals is fired `k` times, once with the delta substituted for each IDB
//! occurrence, so every inference uses at least one fact that is new. Duplicate
//! derivations across the `k` firings are removed by the staging relation.
//!
//! This is the evaluation strategy the paper assumes when it speaks of "semi-naive
//! bottom-up evaluation of the new program" (§1).
//!
//! Two entry points beyond the classic [`seminaive_evaluate`] support the persistent
//! engine (`factorlog-engine`):
//!
//! * [`CompiledProgram`] + [`seminaive_evaluate_compiled`] — compile a program's rules
//!   once and replay the compiled plan over many databases (the prepared-query path);
//! * [`seminaive_resume`] — restart the fixpoint over an *existing* least model with
//!   externally seeded deltas (newly inserted EDB facts), deriving only consequences
//!   that use at least one new fact instead of re-evaluating from scratch;
//! * [`seminaive_retract`] — the negative-delta counterpart: retract base facts from
//!   an existing least model with DRed-shaped over-delete/re-derive propagation and
//!   a counting re-derivation phase, through the same compiled firings.
//!
//! # Parallel rounds
//!
//! When [`EvalOptions::threads`] asks for more than one worker, every round whose
//! firings enumerate enough outer rows (see [`EvalOptions::parallel_threshold`]) is
//! hash-partitioned: each firing's depth-0 row set — the round's delta when the delta
//! literal leads the body, the driving relation scan otherwise — is split across a
//! `std::thread::scope` worker pool by [`crate::storage::shard_of_row`] (the join-key
//! columns the index plan maintains on a scanned outer, whole-row hash otherwise —
//! see [`partition_columns`] for why probed outers must row-hash). Workers run
//! [`CompiledRule::fire_partition`] with per-worker [`JoinScratch`]es from a scratch
//! pool and append emissions to per-worker out-buffers tagged with the outer row id;
//! the main thread then merge-sorts the buffers by that insertion key and pushes every
//! tuple through the same collision-verified dedup path the sequential rounds use.
//! The result is bit-for-bit the single-thread evaluation: same fact set, same
//! relation insertion order, same machine-independent counters — only wall-clock
//! changes. Rounds below the threshold (long chains with tiny deltas) stay
//! sequential, so parallelism never taxes workloads it cannot help.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::ast::{Const, Program};
use crate::fault::FaultSite;
use crate::fx::FxHashMap;
use crate::storage::{Database, Relation, RowId};
use crate::symbol::Symbol;

use super::join::{
    reorder_body, CompiledRule, EvalOptions, Governor, JoinScratch, RuleAccess, ShardSpec,
};
use super::stats::EvalStats;
use super::trace::EvalProfile;
use super::{arity_map, EvalError, EvalResult};

/// Start a phase timer iff the run is being traced — the disabled-tracing cost
/// of every span site is this one branch on the profile option.
#[inline]
fn span_start(stats: &EvalStats) -> Option<std::time::Instant> {
    stats.profile.is_some().then(std::time::Instant::now)
}

/// Close a phase timer opened by [`span_start`].
#[inline]
fn span_end(stats: &mut EvalStats, name: &'static str, start: Option<std::time::Instant>) {
    if let (Some(profile), Some(start)) = (stats.profile.as_deref_mut(), start) {
        profile.record_phase(name, start.elapsed());
    }
}

/// Fresh statistics for a traced or untraced run of `rule_count` rules.
fn stats_for_run(rule_count: usize, options: &EvalOptions) -> EvalStats {
    let mut stats = EvalStats::new(rule_count);
    if options.trace {
        stats.profile = Some(Box::new(EvalProfile::new(rule_count)));
    }
    stats
}

/// A program validated and compiled for semi-naive evaluation: the reusable plan.
///
/// Compilation (validation, IDB classification, variable-slot assignment, bound-position
/// analysis, per-predicate index planning) happens once; the plan can then be replayed
/// over any number of databases with [`seminaive_evaluate_compiled`] or resumed
/// incrementally with [`seminaive_resume`]. This is what the prepared-query cache
/// stores.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    program: Program,
    idb: BTreeSet<Symbol>,
    rules: Vec<CompiledRule>,
    /// For each predicate, the column subsets some rule probes it on — the indexes to
    /// maintain on the database relation *and* on the semi-naive delta relations, so
    /// recursive-literal delta joins probe instead of scanning.
    index_plan: FxHashMap<Symbol, Vec<Vec<usize>>>,
}

impl CompiledProgram {
    /// Validate and compile `program`. `options` decides builtin handling at compile
    /// time (the `succ/2` flag is baked into the compiled literals).
    pub fn compile(program: &Program, options: &EvalOptions) -> Result<CompiledProgram, EvalError> {
        crate::validate::check_program(program).map_err(EvalError::Invalid)?;
        let idb = program.idb_predicates();
        let rules: Vec<CompiledRule> = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| CompiledRule::compile(i, r, &|p| idb.contains(&p), options))
            .collect();
        let index_plan = build_index_plan(&rules);
        Ok(CompiledProgram {
            program: program.clone(),
            idb,
            rules,
            index_plan,
        })
    }

    /// The source program this plan was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The IDB predicates (head predicates) of the compiled program.
    pub fn idb(&self) -> &BTreeSet<Symbol> {
        &self.idb
    }

    /// The per-evaluation plan: the compiled rules, with bodies greedily reordered
    /// against the starting database's relation sizes when
    /// [`EvalOptions::reorder_literals`] is set (most bound argument positions first,
    /// then smallest relation — the ROADMAP's selectivity heuristic). Reordering
    /// re-derives the affected rules' bound-position analysis and the index plan, so
    /// delta indexes always match the effective join order. The compile-time rules
    /// are borrowed unchanged when no rule moves.
    fn plan(&self, db: &Database, options: &EvalOptions) -> EvalPlan<'_> {
        let mut reordered: Option<Vec<CompiledRule>> = None;
        let mut reorders = 0usize;
        if options.reorder_literals {
            for (i, rule) in self.program.rules.iter().enumerate() {
                if let Some(better) = reorder_body(rule, db, options) {
                    let rules = reordered.get_or_insert_with(|| self.rules.clone());
                    rules[i] =
                        CompiledRule::compile(i, &better, &|p| self.idb.contains(&p), options);
                    reorders += 1;
                }
            }
        }
        let reordered_index_plan = reordered.as_deref().map(build_index_plan);
        EvalPlan {
            compiled: self,
            reordered,
            reordered_index_plan,
            reorders,
        }
    }
}

/// For each predicate, the column subsets some rule probes it on — the indexes to
/// maintain on the database relation *and* on the semi-naive delta relations, so
/// recursive-literal delta joins probe instead of scanning.
fn build_index_plan(rules: &[CompiledRule]) -> FxHashMap<Symbol, Vec<Vec<usize>>> {
    let mut index_plan: FxHashMap<Symbol, Vec<Vec<usize>>> = FxHashMap::default();
    for rule in rules {
        for literal in &rule.literals {
            if !literal.wants_index() {
                continue;
            }
            let bound = &literal.bound_positions;
            let sets = index_plan.entry(literal.predicate).or_default();
            if !sets.iter().any(|s| s == bound) {
                sets.push(bound.clone());
            }
        }
    }
    index_plan
}

/// A [`CompiledProgram`] specialized to one evaluation: body literals reordered by
/// the selectivity heuristic against the starting database (when enabled), with the
/// matching index plan. Borrows the compile-time artifacts when nothing moved.
struct EvalPlan<'a> {
    compiled: &'a CompiledProgram,
    /// Recompiled rules when at least one body was reordered; `None` = compile order.
    reordered: Option<Vec<CompiledRule>>,
    /// Index plan matching `reordered` (bound positions change with the order).
    reordered_index_plan: Option<FxHashMap<Symbol, Vec<Vec<usize>>>>,
    /// Number of rules whose body order changed (recorded on the statistics).
    reorders: usize,
}

impl EvalPlan<'_> {
    /// The effective compiled rules of this evaluation.
    fn rules(&self) -> &[CompiledRule] {
        self.reordered.as_deref().unwrap_or(&self.compiled.rules)
    }

    /// The effective index plan of this evaluation.
    fn index_plan(&self) -> &FxHashMap<Symbol, Vec<Vec<usize>>> {
        self.reordered_index_plan
            .as_ref()
            .unwrap_or(&self.compiled.index_plan)
    }

    /// Ensure `db` has a relation for every IDB predicate and every secondary index
    /// the compiled joins will probe; returns the arity map used for staging.
    fn prepare(&self, db: &mut Database) -> FxHashMap<Symbol, usize> {
        let arities = arity_map(&self.compiled.program, db);
        for &p in &self.compiled.idb {
            let arity = arities.get(&p).copied().unwrap_or(0);
            db.ensure_relation(p, arity);
        }
        for rule in self.rules() {
            rule.ensure_indexes(db, &arities);
        }
        arities
    }

    /// Fresh empty staging relations, one per IDB predicate, pre-indexed according to
    /// the effective index plan: the staging relation of one round is the delta of the
    /// next, so building its indexes up front (O(1) on an empty relation, maintained
    /// per insert) lets recursive-literal delta joins probe instead of scanning.
    fn empty_staging(&self, arities: &FxHashMap<Symbol, usize>) -> FxHashMap<Symbol, Relation> {
        let mut staging: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for &p in &self.compiled.idb {
            let mut relation = Relation::new(arities.get(&p).copied().unwrap_or(0));
            if let Some(sets) = self.index_plan().get(&p) {
                for columns in sets {
                    relation.ensure_index(columns);
                }
            }
            staging.insert(p, relation);
        }
        staging
    }

    /// Per-evaluation join runtimes: resolved access paths plus a reusable scratch per
    /// rule. Build after [`EvalPlan::prepare`] (index resolution needs the indexes to
    /// exist) and reuse across every round of the fixpoint.
    fn runtimes(&self, db: &Database, stats: &mut EvalStats) -> Vec<RuleRuntime> {
        stats.scratch_allocs += self.rules().len();
        self.rules()
            .iter()
            .map(|rule| RuleRuntime {
                access: rule.resolve_access(db),
                scratch: rule.scratch(),
            })
            .collect()
    }
}

/// The per-evaluation mutable join state of one rule.
struct RuleRuntime {
    access: RuleAccess,
    scratch: JoinScratch,
}

/// Evaluate `program` over `edb` with semi-naive iteration.
pub fn seminaive_evaluate(
    program: &Program,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let compiled = CompiledProgram::compile(program, options)?;
    seminaive_evaluate_compiled(&compiled, edb, options)
}

/// Evaluate a pre-compiled plan over `edb` with semi-naive iteration. Equivalent to
/// [`seminaive_evaluate`] but skips validation and rule compilation — the replay path
/// for prepared queries.
pub fn seminaive_evaluate_compiled(
    compiled: &CompiledProgram,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    seminaive_evaluate_owned(compiled, edb.clone(), options)
}

/// Like [`seminaive_evaluate_compiled`] but takes the starting database by value,
/// evaluating in place — for callers that already built a dedicated database (e.g. a
/// prepared plan injecting its seed facts) and don't need a second copy.
pub fn seminaive_evaluate_owned(
    compiled: &CompiledProgram,
    mut db: Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let mut stats = stats_for_run(compiled.rules.len(), options);
    let governor = Governor::new(options);
    let plan_start = span_start(&stats);
    let plan = compiled.plan(&db, options);
    let arities = plan.prepare(&mut db);
    stats.literal_reorders += plan.reorders;
    let mut runtimes = plan.runtimes(&db, &mut stats);
    arm_runtimes(&mut runtimes, &governor);
    let mut exec = Executor::new(options);
    span_end(&mut stats, "eval.plan", plan_start);

    // Round 0: fire every rule against the EDB alone (IDB relations are empty). Exit
    // rules and program facts produce the initial deltas; recursive rules find no IDB
    // facts and contribute nothing. (If the caller pre-loaded IDB facts — e.g. a
    // prepared plan injecting its magic seed — this full pass derives their direct
    // consequences too.)
    let mut delta = plan.empty_staging(&arities);
    stats.iterations += 1;
    let firings: Vec<Firing<'_>> = (0..plan.rules().len())
        .map(|rule_index| Firing {
            rule_index,
            delta: None,
        })
        .collect();
    let round_start = span_start(&stats);
    run_round(
        &plan,
        &db,
        &firings,
        &mut runtimes,
        &mut exec,
        &governor,
        Sink::Derive,
        &mut delta,
        &mut stats,
    )?;
    span_end(&mut stats, "eval.round", round_start);
    drop(firings);
    merge_deltas(&mut db, &delta);
    run_fixpoint(
        &plan,
        &mut db,
        delta,
        &arities,
        &mut runtimes,
        &mut exec,
        &governor,
        options,
        &mut stats,
    )?;

    Ok(EvalResult {
        database: db,
        stats,
    })
}

/// Resume semi-naive evaluation over an existing least `model`, seeded with external
/// deltas — the incremental-maintenance primitive.
///
/// `model` must be a fixpoint of the compiled program over some earlier EDB, with the
/// `seeds` facts **already merged in** (so emission-time duplicate detection sees
/// them); `seeds` holds, per predicate, exactly the facts that are new since that
/// fixpoint. The seed round fires every rule once per body literal whose predicate has
/// a seed delta — EDB predicates included, which is what distinguishes this from an
/// ordinary semi-naive round — so every derivation using at least one new fact is
/// found, and the regular delta-driven fixpoint then propagates the consequences.
/// Returns the statistics of the incremental run; `model` is updated in place.
pub fn seminaive_resume(
    compiled: &CompiledProgram,
    model: &mut Database,
    seeds: &FxHashMap<Symbol, Relation>,
    options: &EvalOptions,
) -> Result<EvalStats, EvalError> {
    let mut stats = stats_for_run(compiled.rules.len(), options);
    let governor = Governor::new(options);
    let plan_start = span_start(&stats);
    let plan = compiled.plan(model, options);
    let arities = plan.prepare(model);
    stats.literal_reorders += plan.reorders;
    let mut runtimes = plan.runtimes(model, &mut stats);
    arm_runtimes(&mut runtimes, &governor);
    let mut exec = Executor::new(options);
    span_end(&mut stats, "eval.plan", plan_start);

    let mut staging = plan.empty_staging(&arities);
    stats.iterations += 1;
    {
        let mut firings: Vec<Firing<'_>> = Vec::new();
        for (rule_index, rule) in plan.rules().iter().enumerate() {
            for (pos, literal) in rule.literals.iter().enumerate() {
                let Some(seed_rel) = seeds.get(&literal.predicate) else {
                    continue;
                };
                if seed_rel.is_empty() {
                    continue;
                }
                firings.push(Firing {
                    rule_index,
                    delta: Some((pos, seed_rel)),
                });
            }
        }
        let round_start = span_start(&stats);
        run_round(
            &plan,
            model,
            &firings,
            &mut runtimes,
            &mut exec,
            &governor,
            Sink::Derive,
            &mut staging,
            &mut stats,
        )?;
        span_end(&mut stats, "eval.round", round_start);
    }
    merge_deltas(model, &staging);
    run_fixpoint(
        &plan,
        model,
        staging,
        &arities,
        &mut runtimes,
        &mut exec,
        &governor,
        options,
        &mut stats,
    )?;
    Ok(stats)
}

/// Retract facts from an existing least `model` with incremental delete propagation —
/// the negative-delta counterpart of [`seminaive_resume`].
///
/// `model` must be a fixpoint of the compiled program over some earlier EDB, with the
/// retracted base facts **still present**; `removed` holds, per predicate, the base
/// facts being retracted (facts not in the model are ignored); `base` is the
/// caller's surviving base-fact store — the EDB *after* the retraction, which the
/// caller must have applied first, so that a later from-scratch evaluation agrees
/// with the maintained model. Base facts count as support during re-derivation:
/// an over-deleted fact of a rule-defined predicate that is also a surviving base
/// fact (the evaluator accepts pre-loaded IDB facts) is restored even when no rule
/// derives it.
///
/// The propagation is DRed-shaped with a counting re-derivation phase, all driven
/// through the same compiled join pipeline (and the same partitioned executor) as
/// insertion:
///
/// 1. **Over-delete** — negative deltas: fire every rule once per body position whose
///    predicate has a deletion delta, against the *old* model. Every emitted head
///    fact had a derivation touching a retracted fact, so it is scheduled for
///    deletion; the schedule is propagated to a fixpoint. This over-approximates for
///    facts with independent surviving derivations — deliberately: recursive
///    predicates can support themselves in cycles, so incremental derivation counts
///    cannot soundly decide survival under the evaluator's overlapping delta
///    discipline (an instantiation whose body facts arrive — or die — in the same
///    round is enumerated once per such position, so insert-side and delete-side
///    multiplicities need not cancel).
/// 2. **Remove** — every scheduled fact is removed from the model in one batch
///    compaction per relation.
/// 3. **Re-derive by counting** — rules whose head predicate lost facts fire once
///    against the post-removal model; emissions that are scheduled-deleted facts are
///    staged into *counted* relations ([`Relation::enable_counts`]), so each staged
///    fact carries its exact number of surviving derivations (the full firing
///    enumerates each instantiation exactly once). Facts with support count ≥ 1 are
///    restored.
/// 4. **Resume** — the restored facts seed the ordinary positive-delta fixpoint,
///    restoring everything derivable downstream of them.
///
/// Returns the statistics of the run (`retractions` counts facts removed in step 2,
/// `rederivations` facts restored in step 3, `delete_rounds` the fixpoint rounds of
/// step 1); `model` is updated in place. On error the model may hold a partial
/// maintenance state; callers should discard and re-materialize it.
pub fn seminaive_retract(
    compiled: &CompiledProgram,
    model: &mut Database,
    removed: &FxHashMap<Symbol, Relation>,
    base: &Database,
    options: &EvalOptions,
) -> Result<EvalStats, EvalError> {
    let mut stats = stats_for_run(compiled.rules.len(), options);
    let governor = Governor::new(options);
    let plan_start = span_start(&stats);
    let plan = compiled.plan(model, options);
    let arities = plan.prepare(model);
    stats.literal_reorders += plan.reorders;
    let mut runtimes = plan.runtimes(model, &mut stats);
    arm_runtimes(&mut runtimes, &governor);
    let mut exec = Executor::new(options);
    span_end(&mut stats, "eval.plan", plan_start);

    // Seed the deletion schedule with the retracted base facts present in the model,
    // indexed like delta relations so recursive-literal negative deltas probe.
    let mut deleted: FxHashMap<Symbol, Relation> = FxHashMap::default();
    for (&pred, rel) in removed {
        let present: Vec<&[Const]> = rel
            .iter()
            .filter(|tuple| {
                model
                    .relation(pred)
                    .is_some_and(|r| r.arity() == rel.arity() && r.contains(tuple))
            })
            .collect();
        if present.is_empty() {
            continue;
        }
        let mut seed = Relation::new(rel.arity());
        if let Some(sets) = plan.index_plan().get(&pred) {
            for columns in sets {
                seed.ensure_index(columns);
            }
        }
        for tuple in present {
            seed.insert(tuple);
        }
        stats.retractions += seed.len();
        deleted.insert(pred, seed);
    }
    if deleted.is_empty() {
        return Ok(stats);
    }

    // Phase 1 — over-delete fixpoint: negative deltas through the compiled firings.
    let overdelete_start = span_start(&stats);
    let mut delta: FxHashMap<Symbol, Relation> = deleted.clone();
    loop {
        governor.check_round(&mut stats, || estimated_bytes(model, &deleted))?;
        let mut staging = plan.empty_staging(&arities);
        {
            let mut firings: Vec<Firing<'_>> = Vec::new();
            for (rule_index, rule) in plan.rules().iter().enumerate() {
                for (pos, literal) in rule.literals.iter().enumerate() {
                    let Some(delta_rel) = delta.get(&literal.predicate) else {
                        continue;
                    };
                    if delta_rel.is_empty() {
                        continue;
                    }
                    firings.push(Firing {
                        rule_index,
                        delta: Some((pos, delta_rel)),
                    });
                }
            }
            if firings.is_empty() {
                break;
            }
            if stats.delete_rounds >= options.max_iterations {
                return Err(EvalError::IterationLimit {
                    limit: options.max_iterations,
                });
            }
            stats.delete_rounds += 1;
            run_round(
                &plan,
                model,
                &firings,
                &mut runtimes,
                &mut exec,
                &governor,
                Sink::Retract { deleted: &deleted },
                &mut staging,
                &mut stats,
            )?;
            governor.fault_site(FaultSite::DeleteOverdelete)?;
        }
        if staging.values().all(Relation::is_empty) {
            break;
        }
        for (&pred, rel) in &staging {
            if !rel.is_empty() {
                deleted
                    .entry(pred)
                    .or_insert_with(|| Relation::new(rel.arity()))
                    .merge_from(rel);
            }
        }
        delta = staging;
    }
    span_end(&mut stats, "delete.overdelete", overdelete_start);

    // Phase 2 — remove every scheduled fact (one compaction per relation).
    let remove_start = span_start(&stats);
    for (&pred, rel) in &deleted {
        if let Some(target) = model.relation_mut(pred) {
            target.remove_all(rel);
        }
    }
    span_end(&mut stats, "delete.remove", remove_start);

    // Phase 3 — counting re-derivation: count each over-deleted IDB fact's surviving
    // derivations; facts with support ≥ 1 are restored. A surviving *base* fact is
    // one unit of support too (pre-loaded IDB facts have no deriving rule).
    let candidates: FxHashMap<Symbol, Relation> = deleted
        .iter()
        .filter(|(pred, rel)| compiled.idb.contains(pred) && !rel.is_empty())
        .map(|(&pred, rel)| (pred, rel.clone()))
        .collect();
    if !candidates.is_empty() {
        let rederive_start = span_start(&stats);
        let mut restored = plan.empty_staging(&arities);
        for rel in restored.values_mut() {
            rel.enable_counts();
        }
        for (pred, cand) in &candidates {
            let Some(base_rel) = base.relation(*pred) else {
                continue;
            };
            if base_rel.arity() != cand.arity() {
                continue;
            }
            let staged = restored.get_mut(pred).expect("idb staging exists");
            for tuple in cand.iter() {
                if base_rel.contains(tuple) && staged.insert_counted(tuple) {
                    stats.rederivations += 1;
                }
            }
        }
        {
            let firings: Vec<Firing<'_>> = plan
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, rule)| candidates.contains_key(&rule.head_predicate))
                .map(|(rule_index, _)| Firing {
                    rule_index,
                    delta: None,
                })
                .collect();
            run_round(
                &plan,
                model,
                &firings,
                &mut runtimes,
                &mut exec,
                &governor,
                Sink::Rederive {
                    candidates: &candidates,
                },
                &mut restored,
                &mut stats,
            )?;
            governor.fault_site(FaultSite::DeleteRederive)?;
        }
        span_end(&mut stats, "delete.rederive", rederive_start);
        // Phase 4 — restored facts rejoin the model and seed the ordinary
        // positive-delta fixpoint for everything downstream of them.
        merge_deltas(model, &restored);
        run_fixpoint(
            &plan,
            model,
            restored,
            &arities,
            &mut runtimes,
            &mut exec,
            &governor,
            options,
            &mut stats,
        )?;
    }
    Ok(stats)
}

/// The delta-driven fixpoint loop shared by full evaluation and incremental resume:
/// fire each rule once per IDB body literal with the delta substituted at that
/// literal, until no new facts appear.
#[allow(clippy::too_many_arguments)]
fn run_fixpoint(
    plan: &EvalPlan<'_>,
    db: &mut Database,
    mut delta: FxHashMap<Symbol, Relation>,
    arities: &FxHashMap<Symbol, usize>,
    runtimes: &mut [RuleRuntime],
    exec: &mut Executor,
    governor: &Governor,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    loop {
        // Guardrails are checked before the convergence test so a trip during
        // the previous round (cancellation, deadline, a join fault) surfaces
        // even when that round's truncated output left the delta empty.
        governor.check_round(stats, || estimated_bytes(db, &delta))?;
        if delta.values().all(Relation::is_empty) {
            break;
        }
        if stats.iterations >= options.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        stats.iterations += 1;

        let mut staging = plan.empty_staging(arities);
        {
            let mut firings: Vec<Firing<'_>> = Vec::new();
            for (rule_index, rule) in plan.rules().iter().enumerate() {
                for &pos in &rule.idb_literal_positions {
                    let body_pred = rule.literals[pos].predicate;
                    let delta_rel = delta.get(&body_pred).expect("idb delta exists");
                    if delta_rel.is_empty() {
                        continue;
                    }
                    firings.push(Firing {
                        rule_index,
                        delta: Some((pos, delta_rel)),
                    });
                }
            }
            let round_start = span_start(stats);
            run_round(
                plan,
                db,
                &firings,
                runtimes,
                exec,
                governor,
                Sink::Derive,
                &mut staging,
                stats,
            )?;
            span_end(stats, "eval.round", round_start);
        }
        // The new delta is the staged facts not already in the full database; `staged`
        // was deduplicated against `db` during emission, so it is the delta directly.
        merge_deltas(db, &staging);
        delta = staging;
    }
    Ok(())
}

/// One scheduled rule firing of a round: the rule, and optionally the delta-substituted
/// body position with the relation standing in for it.
#[derive(Clone, Copy)]
struct Firing<'d> {
    rule_index: usize,
    delta: Option<(usize, &'d Relation)>,
}

/// What a round's emissions *mean* — the delta polarity of the round. All three modes
/// run through the same compiled firings and (when the round is heavy enough) the
/// same partitioned executor; only the staging criterion at the emission point
/// differs, so sequential and parallel rounds of every polarity stay bit-identical.
#[derive(Clone, Copy)]
enum Sink<'a> {
    /// Positive deltas: stage emissions not already in the database (the ordinary
    /// semi-naive round).
    Derive,
    /// Negative deltas (the over-delete phase of retraction): stage emissions that
    /// are still present in the database and not already scheduled for deletion in
    /// `deleted` — every derivation that touches a retracted fact schedules its head.
    Retract {
        /// Facts already scheduled for deletion in earlier rounds of this batch.
        deleted: &'a FxHashMap<Symbol, Relation>,
    },
    /// The counting re-derivation pass: stage emissions that are over-deleted
    /// `candidates`, bumping the staged fact's support count on every enumeration —
    /// the staging relations carry per-fact counts, and any fact staged here has at
    /// least one derivation from surviving facts.
    Rederive {
        /// The over-deleted facts whose surviving support is being counted.
        candidates: &'a FxHashMap<Symbol, Relation>,
    },
}

impl Sink<'_> {
    /// Apply one emission of `rule` to its staging relation, recording the
    /// mode-specific statistics. `head` is the database relation of the rule's head
    /// predicate. This is THE emission point: the sequential path (`fire_into`) and
    /// the parallel merge both go through it, which is what keeps the two paths'
    /// staged contents and counters identical.
    #[inline]
    fn stage(
        &self,
        rule: &CompiledRule,
        head: Option<&Relation>,
        staged: &mut Relation,
        tuple: &[Const],
        stats: &mut EvalStats,
    ) {
        let is_new = match self {
            Sink::Derive => {
                let known = head.map(|r| r.contains(tuple)).unwrap_or(false);
                let is_new = !known && staged.insert(tuple);
                stats.record_inference(rule.rule_index, rule.head_predicate, is_new);
                is_new
            }
            Sink::Retract { deleted } => {
                let scheduled = deleted
                    .get(&rule.head_predicate)
                    .is_some_and(|r| r.contains(tuple));
                let dying = !scheduled && head.map(|r| r.contains(tuple)).unwrap_or(false);
                let is_new = dying && staged.insert(tuple);
                stats.record_retraction(rule.rule_index, is_new);
                is_new
            }
            Sink::Rederive { candidates } => {
                let candidate = candidates
                    .get(&rule.head_predicate)
                    .is_some_and(|r| r.contains(tuple));
                let is_new = candidate && staged.insert_counted(tuple);
                stats.record_rederivation(rule.rule_index, is_new);
                is_new
            }
        };
        // Rows in/out are recorded at THE emission point, so they are identical
        // on the sequential and partitioned paths (and across thread counts).
        if let Some(profile) = stats.profile.as_deref_mut() {
            profile.record_rule_row(rule.rule_index, is_new);
        }
    }
}

/// The round executor: the resolved worker count and threshold, plus the lazily built
/// per-worker state (one [`JoinScratch`] per rule per worker from the scratch pool,
/// and reusable out-buffers). One executor lives per evaluation, so parallel rounds
/// reuse the same scratches and buffers round after round.
struct Executor {
    /// Effective worker count (>= 1).
    workers: usize,
    /// Minimum total outer rows in a round before it is partitioned.
    threshold: usize,
    /// Per-worker state; empty until the first parallel round.
    pool: Vec<WorkerState>,
}

struct WorkerState {
    /// One reusable scratch per rule (rules fire on every worker).
    scratches: Vec<JoinScratch>,
    /// One out-buffer per firing of the current round (reused across rounds).
    bufs: Vec<OutBuf>,
    /// Per-firing join wall time of the current round, in nanoseconds — filled
    /// only when the run is traced, summed across workers into the per-rule
    /// profile after the round joins.
    times: Vec<u64>,
}

/// A worker's emissions for one firing: tuples appended flat, with `(outer row id,
/// tuple count)` run-length keys. Within one worker the keys are strictly ascending
/// (the shard enumerates outer rows in order), and shards are disjoint, so a k-way
/// merge by outer id reconstructs the sequential emission order exactly.
#[derive(Default)]
struct OutBuf {
    keys: Vec<(RowId, u32)>,
    data: Vec<Const>,
}

impl OutBuf {
    fn clear(&mut self) {
        self.keys.clear();
        self.data.clear();
    }

    #[inline]
    fn push(&mut self, outer: RowId, tuple: &[Const]) {
        match self.keys.last_mut() {
            Some((id, n)) if *id == outer => *n += 1,
            _ => self.keys.push((outer, 1)),
        }
        self.data.extend_from_slice(tuple);
    }
}

impl Executor {
    fn new(options: &EvalOptions) -> Executor {
        Executor {
            workers: options.effective_threads().max(1),
            threshold: options.parallel_threshold,
            pool: Vec::new(),
        }
    }

    /// Build the per-worker scratch pool on first use (counted as scratch
    /// allocations: `workers * rules` on top of the sequential per-rule scratches).
    /// Worker scratches are armed with the evaluation's governance poll, so the
    /// cancellation granularity bound holds inside partitioned rounds too.
    fn ensure_pool(&mut self, rules: &[CompiledRule], stats: &mut EvalStats, governor: &Governor) {
        if !self.pool.is_empty() {
            return;
        }
        for _ in 0..self.workers {
            self.pool.push(WorkerState {
                scratches: rules
                    .iter()
                    .map(|rule| {
                        let mut scratch = rule.scratch();
                        scratch.arm_poll(governor.join_poll());
                        scratch
                    })
                    .collect(),
                bufs: Vec::new(),
                times: Vec::new(),
            });
        }
        stats.scratch_allocs += self.workers * rules.len();
    }
}

/// Total depth-0 rows the round's firings will enumerate — the work available for
/// partitioning. The delta relation when the delta literal leads the body, the
/// driving relation otherwise.
fn outer_rows(rules: &[CompiledRule], db: &Database, firings: &[Firing<'_>]) -> usize {
    firings
        .iter()
        .map(|firing| match firing.delta {
            Some((0, rel)) => rel.len(),
            _ => match rules[firing.rule_index].literals.first() {
                // A probed or fully bound outer (bound positions are constants at
                // depth 0) enumerates one hash bucket, not the relation — counting
                // the full length here would misclassify near-empty rounds as heavy
                // and pay partition overhead to process a handful of rows.
                Some(literal) if !literal.bound_positions.is_empty() => 1,
                Some(literal) => db
                    .relation(literal.predicate)
                    .map(Relation::len)
                    .unwrap_or(0),
                None => 1,
            },
        })
        .sum()
}

/// Execute one round's firings into `staging`: sequentially through the per-rule
/// runtimes, or hash-partitioned across the worker pool when the round is heavy
/// enough. Both paths stage the same facts in the same order and record the same
/// counters (see the module docs).
#[allow(clippy::too_many_arguments)]
fn run_round(
    plan: &EvalPlan<'_>,
    db: &Database,
    firings: &[Firing<'_>],
    runtimes: &mut [RuleRuntime],
    exec: &mut Executor,
    governor: &Governor,
    sink: Sink<'_>,
    staging: &mut FxHashMap<Symbol, Relation>,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    let rules = plan.rules();
    if exec.workers > 1 && outer_rows(rules, db, firings) >= exec.threshold {
        return run_round_parallel(
            plan, db, firings, runtimes, exec, governor, sink, staging, stats,
        );
    }
    for firing in firings {
        let rule = &rules[firing.rule_index];
        let runtime = &mut runtimes[firing.rule_index];
        // A tripped poll (cancellation, deadline, join fault) stops the round:
        // remaining firings on that scratch would be discarded anyway.
        if runtime.scratch.poll_tripped() {
            continue;
        }
        let staged = staging
            .get_mut(&rule.head_predicate)
            .expect("idb staging exists");
        fire_into(rule, runtime, db, firing.delta, sink, staged, stats);
    }
    governor.fault_site(FaultSite::RoundMerge)
}

/// One firing of a partitioned round, with the partition-key columns all workers
/// shard its outer rows by and (for scanned outers) the round's precomputed shard
/// assignment of the outer relation's rows.
struct Job<'d, 'p> {
    rule_index: usize,
    delta: Option<(usize, &'d Relation)>,
    columns: Option<&'p [usize]>,
    assign: Option<&'p [u8]>,
}

/// The outer relation a firing scans at depth 0, when there is one to precompute
/// shard assignments for: the delta relation when the delta leads the body, the
/// driving database relation for an unbound (full-scan) first literal. Probed,
/// fully bound, builtin-first and empty-bodied firings return `None` — their outer
/// enumeration is a hash bucket or a single row, so hashing the whole relation up
/// front would cost more than it saves.
fn scanned_outer<'d>(
    rule: &CompiledRule,
    db: &'d Database,
    delta: Option<(usize, &'d Relation)>,
) -> Option<&'d Relation> {
    let literal = rule.literals.first()?;
    if literal.is_builtin_succ() && db.relation(literal.predicate).is_none() {
        return None;
    }
    if !literal.bound_positions.is_empty() {
        return None;
    }
    match delta {
        Some((0, rel)) => Some(rel),
        _ => db.relation(literal.predicate),
    }
}

/// The partition key of a firing's outer rows.
///
/// A *probed* outer (nonempty bound positions — constants, at depth 0) must use
/// whole-row hash: every candidate row shares the probe-key values, so partitioning
/// by them would collapse all matches onto a single shard and leave the other
/// workers idle. A *scanned* outer (the delta when it leads the body) partitions by
/// the first column set the index plan maintains on its predicate — the join key
/// other literals probe it on, the sharding columns the ROADMAP calls out — so
/// tuples sharing a downstream join key stay on one worker; whole-row hash is the
/// fallback when no index plan covers the predicate.
fn partition_columns<'p>(plan: &'p EvalPlan<'_>, rule: &'p CompiledRule) -> Option<&'p [usize]> {
    let literal = rule.literals.first()?;
    if !literal.bound_positions.is_empty() {
        return None;
    }
    plan.index_plan()
        .get(&literal.predicate)
        .and_then(|sets| sets.first())
        .map(Vec::as_slice)
}

/// The partitioned round: shard every firing's outer rows across the worker pool,
/// collect per-worker out-buffers, then merge them — sorted by the outer-row
/// insertion key — through the staging relations' collision-verified dedup tables.
#[allow(clippy::too_many_arguments)]
fn run_round_parallel(
    plan: &EvalPlan<'_>,
    db: &Database,
    firings: &[Firing<'_>],
    runtimes: &mut [RuleRuntime],
    exec: &mut Executor,
    governor: &Governor,
    sink: Sink<'_>,
    staging: &mut FxHashMap<Symbol, Relation>,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    let rules = plan.rules();
    let workers = exec.workers;
    let trace = stats.profile.is_some();
    exec.ensure_pool(rules, stats, governor);

    let partition_start = span_start(stats);
    // Precompute each scanned outer's shard assignment once (PR 3 follow-on): one
    // hashing pass on the round driver replaces every worker re-hashing every outer
    // row in its ownership filter — O(rows) total instead of O(workers × rows). The
    // assignment uses exactly `shard_of_row` over the job's partition columns, so
    // the partitioning (and therefore the merged emission order) is unchanged.
    // Firings sharing an (outer relation, partition columns) pair — e.g. a rule with
    // several delta positions scanning the same driving relation — share one vector.
    let mut computed: Vec<Vec<u8>> = Vec::new();
    let mut keys: Vec<(*const Relation, Option<&[usize]>)> = Vec::new();
    let assign_index: Vec<Option<usize>> = firings
        .iter()
        .map(|firing| {
            let rule = &rules[firing.rule_index];
            let columns = partition_columns(plan, rule);
            let outer = scanned_outer(rule, db, firing.delta)?;
            let key = (outer as *const Relation, columns);
            if let Some(found) = keys.iter().position(|&k| k == key) {
                return Some(found);
            }
            computed.push(
                (0..outer.len() as RowId)
                    .map(|id| crate::storage::shard_of_row(outer.row(id), columns, workers) as u8)
                    .collect(),
            );
            keys.push(key);
            Some(computed.len() - 1)
        })
        .collect();
    let jobs: Vec<Job<'_, '_>> = firings
        .iter()
        .zip(&assign_index)
        .map(|(firing, assign)| Job {
            rule_index: firing.rule_index,
            delta: firing.delta,
            columns: partition_columns(plan, &rules[firing.rule_index]),
            assign: assign.map(|idx| computed[idx].as_slice()),
        })
        .collect();
    for state in &mut exec.pool {
        if state.bufs.len() < jobs.len() {
            state.bufs.resize_with(jobs.len(), OutBuf::default);
        }
        for buf in &mut state.bufs[..jobs.len()] {
            buf.clear();
        }
        state.times.clear();
        if trace {
            state.times.resize(jobs.len(), 0);
        }
    }
    span_end(stats, "parallel.partition", partition_start);

    // Fan out: worker 0 runs on the calling thread, the rest on scoped threads. All
    // shared state (database, deltas, access paths) is borrowed immutably; each
    // worker owns its scratches and buffers.
    //
    // Panic isolation: every worker body runs under `catch_unwind`, so a panicking
    // worker (a bug, or an injected `Panic`-action fault) cannot tear down the
    // scope. The first panic records its payload and sets the governor's internal
    // abort token — siblings with armed polls trip at their next poll instead of
    // running their shards to completion — and the round surfaces a structured
    // [`EvalError::WorkerPanic`]. `AssertUnwindSafe` is sound here because the
    // whole evaluation is discarded on the error path: no half-mutated scratch or
    // out-buffer is ever observed again.
    let panicked: Mutex<Option<String>> = Mutex::new(None);
    {
        let runtimes: &[RuleRuntime] = runtimes;
        let jobs: &[Job<'_, '_>] = &jobs;
        let panicked = &panicked;
        let abort = governor.abort_token();
        let abort = &abort;
        std::thread::scope(|scope| {
            let mut states = exec.pool.iter_mut();
            let first = states.next().expect("pool has at least one worker");
            for (i, state) in states.enumerate() {
                scope.spawn(move || {
                    let body = AssertUnwindSafe(|| {
                        run_worker(i + 1, workers, state, jobs, rules, runtimes, db, trace);
                    });
                    if let Err(payload) = catch_unwind(body) {
                        abort.cancel();
                        *panicked.lock().unwrap() = Some(panic_message(payload.as_ref()));
                    }
                });
            }
            let body = AssertUnwindSafe(|| {
                run_worker(0, workers, first, jobs, rules, runtimes, db, trace);
            });
            if let Err(payload) = catch_unwind(body) {
                abort.cancel();
                *panicked.lock().unwrap() = Some(panic_message(payload.as_ref()));
            }
        });
    }
    if let Some(message) = panicked
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        stats.worker_panics += 1;
        return Err(EvalError::WorkerPanic {
            message,
            partial_stats: Box::new(stats.clone()),
        });
    }

    // A partitioned firing counts once (like its sequential counterpart); its
    // time is the per-worker join times summed — CPU time, not round latency.
    if let Some(profile) = stats.profile.as_deref_mut() {
        for (j, job) in jobs.iter().enumerate() {
            let total: u64 = exec.pool.iter().map(|state| state.times[j]).sum();
            profile.record_rule_firing(job.rule_index, total);
        }
    }

    // Merge: per firing, in firing order, k-way by outer row id — reconstructing the
    // sequential emission order — through the same dedup path `fire_into` uses.
    let merge_start = span_start(stats);
    for (j, job) in jobs.iter().enumerate() {
        let rule = &rules[job.rule_index];
        let head = db.relation(rule.head_predicate);
        let staged = staging
            .get_mut(&rule.head_predicate)
            .expect("idb staging exists");
        let arity = staged.arity();
        let mut cursors: Vec<(usize, usize)> = vec![(0, 0); workers];
        loop {
            let mut next: Option<(usize, RowId)> = None;
            for (w, &(key_idx, _)) in cursors.iter().enumerate() {
                if let Some(&(outer, _)) = exec.pool[w].bufs[j].keys.get(key_idx) {
                    if next.is_none_or(|(_, best)| outer < best) {
                        next = Some((w, outer));
                    }
                }
            }
            let Some((w, _)) = next else { break };
            let buf = &exec.pool[w].bufs[j];
            let (key_idx, mut offset) = cursors[w];
            let (_, count) = buf.keys[key_idx];
            for _ in 0..count {
                let tuple = &buf.data[offset..offset + arity];
                offset += arity;
                sink.stage(rule, head, staged, tuple, stats);
            }
            cursors[w] = (key_idx + 1, offset);
        }
    }
    span_end(stats, "parallel.merge", merge_start);

    for state in &mut exec.pool {
        for scratch in &mut state.scratches {
            stats.absorb_join_counters(std::mem::take(&mut scratch.counters));
        }
    }
    stats.parallel_rounds += 1;
    stats.parallel_firings += jobs.len();
    stats.threads_used = stats.threads_used.max(workers);
    governor.fault_site(FaultSite::RoundMerge)
}

/// One worker's share of a partitioned round: every firing, restricted to the outer
/// rows its shard owns, emitted into its own out-buffers.
///
/// Ownership of a scanned outer row is an array load into the round's precomputed
/// shard assignment (see [`run_round_parallel`]); only probed outers — whose
/// candidate sets are too small to be worth a whole-relation hashing pass — fall
/// back to hashing each candidate row.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    worker: usize,
    of: usize,
    state: &mut WorkerState,
    jobs: &[Job<'_, '_>],
    rules: &[CompiledRule],
    runtimes: &[RuleRuntime],
    db: &Database,
    trace: bool,
) {
    for (j, job) in jobs.iter().enumerate() {
        let rule = &rules[job.rule_index];
        let buf = &mut state.bufs[j];
        let scratch = &mut state.scratches[job.rule_index];
        // Once this worker's poll tripped (cancellation, deadline, a sibling's
        // panic via the abort token), stop taking jobs: the round is doomed.
        if scratch.poll_tripped() {
            continue;
        }
        let shard = ShardSpec {
            shard: worker,
            of,
            columns: job.columns,
            assign: job.assign,
        };
        let start = trace.then(std::time::Instant::now);
        rule.fire_partition(
            db,
            job.delta,
            &runtimes[job.rule_index].access,
            scratch,
            &shard,
            &mut |outer, tuple| buf.push(outer, tuple),
        );
        if let Some(start) = start {
            state.times[j] = start.elapsed().as_nanos() as u64;
        }
    }
}

/// Fire one rule (optionally with a delta-substituted literal) through its reusable
/// runtime, staging emissions into `staged` under the round's [`Sink`] polarity and
/// recording statistics.
fn fire_into(
    rule: &CompiledRule,
    runtime: &mut RuleRuntime,
    db: &Database,
    delta: Option<(usize, &Relation)>,
    sink: Sink<'_>,
    staged: &mut Relation,
    stats: &mut EvalStats,
) {
    let head = db.relation(rule.head_predicate);
    let start = span_start(stats);
    rule.fire_with(
        db,
        delta,
        &runtime.access,
        &mut runtime.scratch,
        &mut |tuple| {
            sink.stage(rule, head, staged, tuple, stats);
        },
    );
    if let (Some(profile), Some(start)) = (stats.profile.as_deref_mut(), start) {
        profile.record_rule_firing(rule.rule_index, start.elapsed().as_nanos() as u64);
    }
    stats.absorb_join_counters(std::mem::take(&mut runtime.scratch.counters));
}

/// Arm every sequential per-rule scratch with the evaluation's governance poll.
/// (Worker-pool scratches are armed in [`Executor::ensure_pool`].)
fn arm_runtimes(runtimes: &mut [RuleRuntime], governor: &Governor) {
    for runtime in runtimes {
        runtime.scratch.arm_poll(governor.join_poll());
    }
}

/// Row-count-based estimate of the evaluation's resident footprint, consulted by
/// the memory guardrail: every database and staging/delta row costs
/// `arity × size_of::<Const>()`. Indexes, dedup tables, and allocator slack are
/// not counted, so the estimate is documented as accurate within about 2x — the
/// guardrail trades precision for a count that needs no allocator instrumentation.
fn estimated_bytes(db: &Database, extra: &FxHashMap<Symbol, Relation>) -> usize {
    let cells: usize = db
        .iter()
        .map(|(_, rel)| rel.len() * rel.arity().max(1))
        .sum::<usize>()
        + extra
            .values()
            .map(|rel| rel.len() * rel.arity().max(1))
            .sum::<usize>();
    cells * std::mem::size_of::<Const>()
}

/// Render a caught panic payload: the common `&str`/`String` payloads verbatim,
/// a placeholder otherwise (panic payloads may be any `Any` value).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

fn merge_deltas(db: &mut Database, deltas: &FxHashMap<Symbol, Relation>) {
    for (&pred, rel) in deltas {
        if !rel.is_empty() {
            db.ensure_relation(pred, rel.arity()).merge_from(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::eval::naive::naive_evaluate;
    use crate::parser::{parse_program, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn chain_edb(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        db
    }

    fn tc_program() -> Program {
        parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program
    }

    #[test]
    fn matches_naive_on_transitive_closure() {
        let program = tc_program();
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            semi.database.relation(t).unwrap().to_sorted_vec(),
            naive.database.relation(t).unwrap().to_sorted_vec()
        );
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn does_fewer_inferences_than_naive() {
        let program = tc_program();
        let edb = chain_edb(16);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert!(
            semi.stats.inferences < naive.stats.inferences,
            "semi-naive ({}) must beat naive ({}) on a chain",
            semi.stats.inferences,
            naive.stats.inferences
        );
    }

    #[test]
    fn three_rule_transitive_closure_of_the_paper() {
        // Example 1.1: all three recursive forms plus the exit rule.
        let program = parse_program(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
        )
        .unwrap()
        .program;
        let edb = chain_edb(6);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(result.database.count("t"), 21);
        let q = parse_query("t(0, Y)").unwrap();
        assert_eq!(result.database.answers(&q).len(), 6);
    }

    #[test]
    fn handles_program_facts_as_seeds() {
        // The shape of a Magic-transformed program: a seed fact plus a recursive rule.
        let program = parse_program(
            "m_t(5).\n\
             m_t(W) :- m_t(X), e(X, W).\n\
             ft(Y) :- m_t(X), e(X, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 8), (1, 2)] {
            edb.add_fact("e", &[c(a), c(b)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let ft = result.database.relation(Symbol::intern("ft")).unwrap();
        assert_eq!(ft.to_sorted_vec(), vec![vec![c(6)], vec![c(7)], vec![c(8)]]);
        // The magic set never reaches node 1.
        let m = result.database.relation(Symbol::intern("m_t")).unwrap();
        assert!(!m.contains(&[c(1)]));
    }

    #[test]
    fn nonlinear_rule_with_two_idb_literals() {
        // t(X,Y) :- t(X,W), t(W,Y) requires delta firing on both occurrences.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn cyclic_data_terminates() {
        let program = tc_program();
        let mut edb = Database::new();
        for i in 0..10i64 {
            edb.add_fact("e", &[c(i), c((i + 1) % 10)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // Every node reaches every node in a 10-cycle.
        assert_eq!(result.database.count("t"), 100);
    }

    #[test]
    fn iteration_limit_detects_divergence() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 50,
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&program, &Database::new(), &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 50 }));
    }

    #[test]
    fn same_generation_program() {
        // The canonical non-factorable recursion (§6.4): answers must still be correct.
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        // Two-level tree: 1 -> {2, 3}, flat between 2 and 3's children is via flat(4,5).
        edb.add_fact("up", &[c(2), c(4)]);
        edb.add_fact("up", &[c(3), c(5)]);
        edb.add_fact("flat", &[c(4), c(5)]);
        edb.add_fact("down", &[c(5), c(3)]);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let sg = result.database.relation(Symbol::intern("sg")).unwrap();
        assert!(sg.contains(&[c(4), c(5)]));
        assert!(sg.contains(&[c(2), c(3)]));
        assert_eq!(sg.len(), 2);
    }

    #[test]
    fn compiled_plan_replays_across_databases() {
        let program = tc_program();
        let compiled = CompiledProgram::compile(&program, &EvalOptions::default()).unwrap();
        for n in [3i64, 7, 11] {
            let edb = chain_edb(n);
            let via_plan =
                seminaive_evaluate_compiled(&compiled, &edb, &EvalOptions::default()).unwrap();
            let fresh = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
            assert_eq!(via_plan.database.count("t"), fresh.database.count("t"));
        }
        assert_eq!(compiled.program().len(), 2);
        assert!(compiled.idb().contains(&Symbol::intern("t")));
    }

    /// Resume helper: evaluate, then insert `extra` edges incrementally and resume.
    fn resume_after_inserts(
        program: &Program,
        base: i64,
        extra: &[(i64, i64)],
    ) -> (Database, EvalStats) {
        let compiled = CompiledProgram::compile(program, &EvalOptions::default()).unwrap();
        let mut model = seminaive_evaluate(program, &chain_edb(base), &EvalOptions::default())
            .unwrap()
            .database;
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed_rel = Relation::new(2);
        for &(a, b) in extra {
            if model.add_fact("e", &[c(a), c(b)]) {
                seed_rel.insert(&[c(a), c(b)]);
            }
        }
        seeds.insert(Symbol::intern("e"), seed_rel);
        let stats =
            seminaive_resume(&compiled, &mut model, &seeds, &EvalOptions::default()).unwrap();
        (model, stats)
    }

    #[test]
    fn resume_matches_batch_on_edb_extension() {
        let program = tc_program();
        let extra = [(5i64, 0i64), (2, 7), (9, 9)];
        let (incremental, stats) = resume_after_inserts(&program, 8, &extra);

        let mut full_edb = chain_edb(8);
        for &(a, b) in &extra {
            full_edb.add_fact("e", &[c(a), c(b)]);
        }
        let batch = seminaive_evaluate(&program, &full_edb, &EvalOptions::default()).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            incremental.relation(t).unwrap().to_sorted_vec(),
            batch.database.relation(t).unwrap().to_sorted_vec()
        );
        assert!(stats.facts_derived > 0, "the new edges derive new paths");
    }

    #[test]
    fn resume_with_no_op_seed_derives_nothing() {
        let program = tc_program();
        // Re-inserting an existing edge is filtered out by the caller (add_fact returns
        // false), so the seed relation is empty and resume is a no-op.
        let (model, stats) = resume_after_inserts(&program, 6, &[]);
        assert_eq!(model.count("t"), 21);
        assert_eq!(stats.facts_derived, 0);
        assert_eq!(stats.inferences, 0);
    }

    #[test]
    fn resume_does_less_work_than_reevaluation() {
        let program = tc_program();
        let (_, stats) = resume_after_inserts(&program, 40, &[(40, 41)]);
        let mut full_edb = chain_edb(40);
        full_edb.add_fact("e", &[c(40), c(41)]);
        let batch = seminaive_evaluate(&program, &full_edb, &EvalOptions::default()).unwrap();
        assert!(
            stats.inferences < batch.stats.inferences / 2,
            "incremental ({}) must be far cheaper than batch ({})",
            stats.inferences,
            batch.stats.inferences
        );
    }

    #[test]
    fn resume_handles_nonlinear_rules_and_idb_seeds() {
        // Seeding an IDB predicate directly (a user asserting a derived fact) must
        // propagate through both occurrences of the nonlinear recursion.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let compiled = CompiledProgram::compile(&program, &EvalOptions::default()).unwrap();
        let mut model = seminaive_evaluate(&program, &chain_edb(4), &EvalOptions::default())
            .unwrap()
            .database;
        // Assert t(4, 100) as a fact: every t(x, 4) now extends to t(x, 100).
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(2);
        model.add_fact("t", &[c(4), c(100)]);
        seed.insert(&[c(4), c(100)]);
        seeds.insert(Symbol::intern("t"), seed);
        seminaive_resume(&compiled, &mut model, &seeds, &EvalOptions::default()).unwrap();
        let t = model.relation(Symbol::intern("t")).unwrap();
        for x in 0..4 {
            assert!(t.contains(&[c(x), c(100)]), "t({x}, 100) must be derived");
        }
    }

    #[test]
    fn resume_respects_iteration_limit() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 20,
            ..EvalOptions::default()
        };
        let compiled = CompiledProgram::compile(&program, &options).unwrap();
        // Build a model by hand (the full evaluation would diverge as well).
        let mut model = Database::new();
        model.add_fact("counter", &[c(0)]);
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(1);
        seed.insert(&[c(0)]);
        seeds.insert(Symbol::intern("counter"), seed);
        let err = seminaive_resume(&compiled, &mut model, &seeds, &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 20 }));
    }

    #[test]
    fn delta_joins_probe_indexes_instead_of_scanning() {
        // In `t(X, Y) :- e(X, W), t(W, Y).` the plan reorders the recursive body to
        // `t(W, Y), e(X, W)` (t is empty at plan time): every delta round scans the
        // delta once (depth 0) and probes e on its bound column once per delta row,
        // so index probes must dominate scans by roughly the average delta size.
        let program = tc_program();
        let n = 50i64;
        let options = EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        };
        let result = seminaive_evaluate(&program, &chain_edb(n), &options).unwrap();
        let stats = &result.stats;
        assert_eq!(
            stats.literal_reorders, 1,
            "the recursive body is reordered delta-first"
        );
        assert!(
            stats.index_probes > stats.full_scans * (n as usize / 4),
            "delta joins must probe: {} probes vs {} scans",
            stats.index_probes,
            stats.full_scans
        );
        // One probe per delta row over the whole run: exactly one per derived fact
        // (plus none for round 0, which scans).
        assert_eq!(stats.index_probes, stats.facts_derived);
        // Scratch buffers are allocated once per rule and reused across all rounds.
        assert_eq!(stats.scratch_allocs, program.rules.len());
        assert!(stats.iterations > 10, "the chain needs many delta rounds");
    }

    #[test]
    fn resume_delta_rounds_probe_indexes() {
        let program = tc_program();
        let (_, stats) = resume_after_inserts(&program, 40, &[(40, 41)]);
        assert!(
            stats.index_probes > 0,
            "incremental delta rounds must use index probes"
        );
        assert_eq!(
            stats.scratch_allocs,
            program.rules.len(),
            "one reusable scratch per rule per resume"
        );
    }

    /// Options that force the parallel path (threshold 0) at a given thread count.
    fn parallel_options(threads: usize) -> EvalOptions {
        EvalOptions {
            threads,
            parallel_threshold: 0,
            ..EvalOptions::default()
        }
    }

    /// Assert two databases are identical including per-relation insertion order.
    fn assert_same_model(a: &Database, b: &Database) {
        let preds = |db: &Database| {
            let mut names: Vec<Symbol> = db.iter().map(|(p, _)| p).collect();
            names.sort_by_key(|p| p.as_str());
            names
        };
        assert_eq!(preds(a), preds(b));
        for (pred, rel) in a.iter() {
            let other = b.relation(pred).expect("relation exists in both");
            assert_eq!(
                rel.to_vec(),
                other.to_vec(),
                "{pred} must match in content AND insertion order"
            );
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let programs = [
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).",
            "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).",
        ];
        for source in programs {
            let program = parse_program(source).unwrap().program;
            let mut edb = chain_edb(30);
            for i in 0..10i64 {
                edb.add_fact("e", &[c(i * 3), c(i)]);
            }
            let baseline = seminaive_evaluate(&program, &edb, &parallel_options(1)).unwrap();
            assert_eq!(
                baseline.stats.parallel_rounds, 0,
                "one worker is sequential"
            );
            for threads in [2usize, 4, 8] {
                let parallel =
                    seminaive_evaluate(&program, &edb, &parallel_options(threads)).unwrap();
                assert_same_model(&baseline.database, &parallel.database);
                assert_eq!(baseline.stats.inferences, parallel.stats.inferences);
                assert_eq!(baseline.stats.duplicates, parallel.stats.duplicates);
                assert_eq!(baseline.stats.facts_derived, parallel.stats.facts_derived);
                assert_eq!(baseline.stats.index_probes, parallel.stats.index_probes);
                assert_eq!(baseline.stats.full_scans, parallel.stats.full_scans);
                assert_eq!(
                    baseline.stats.inferences_per_rule,
                    parallel.stats.inferences_per_rule
                );
                assert!(parallel.stats.parallel_rounds > 0, "threshold 0 partitions");
                assert_eq!(parallel.stats.threads_used, threads);
            }
        }
    }

    #[test]
    fn parallel_resume_is_bit_identical_to_sequential() {
        let program = tc_program();
        let extra = [(29i64, 3i64), (7, 31), (31, 32)];
        let run = |threads: usize| {
            let options = parallel_options(threads);
            let compiled = CompiledProgram::compile(&program, &options).unwrap();
            let mut model = seminaive_evaluate(&program, &chain_edb(30), &options)
                .unwrap()
                .database;
            let mut seed_rel = Relation::new(2);
            for &(a, b) in &extra {
                if model.add_fact("e", &[c(a), c(b)]) {
                    seed_rel.insert(&[c(a), c(b)]);
                }
            }
            let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
            seeds.insert(Symbol::intern("e"), seed_rel);
            let stats = seminaive_resume(&compiled, &mut model, &seeds, &options).unwrap();
            (model, stats)
        };
        let (baseline, base_stats) = run(1);
        for threads in [2usize, 4] {
            let (model, stats) = run(threads);
            assert_same_model(&baseline, &model);
            assert_eq!(base_stats.inferences, stats.inferences);
            assert_eq!(base_stats.facts_derived, stats.facts_derived);
            assert!(stats.parallel_rounds > 0, "resume rounds partition too");
        }
    }

    #[test]
    fn rounds_below_the_threshold_stay_sequential() {
        let program = tc_program();
        let options = EvalOptions {
            threads: 4,
            parallel_threshold: 1_000_000,
            ..EvalOptions::default()
        };
        let result = seminaive_evaluate(&program, &chain_edb(20), &options).unwrap();
        assert_eq!(result.stats.parallel_rounds, 0);
        assert_eq!(result.stats.threads_used, 0);
        // The scratch pool is never built for an all-sequential evaluation.
        assert_eq!(result.stats.scratch_allocs, program.rules.len());
    }

    #[test]
    fn reordering_can_be_disabled() {
        let program = tc_program();
        let on = EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        };
        let off = EvalOptions {
            threads: 1,
            reorder_literals: false,
            ..EvalOptions::default()
        };
        let with = seminaive_evaluate(&program, &chain_edb(12), &on).unwrap();
        let without = seminaive_evaluate(&program, &chain_edb(12), &off).unwrap();
        assert!(with.stats.literal_reorders > 0);
        assert_eq!(without.stats.literal_reorders, 0);
        // Same model either way (conjunction is commutative).
        let t = Symbol::intern("t");
        assert_eq!(
            with.database.relation(t).unwrap().to_sorted_vec(),
            without.database.relation(t).unwrap().to_sorted_vec()
        );
        // Same inference count too: reordering moves work, it does not add any.
        assert_eq!(with.stats.inferences, without.stats.inferences);
    }

    #[test]
    fn reordering_never_changes_builtin_rule_answers() {
        // Regression: `p(M) :- succ(N, M), counter(N).` derives nothing in source
        // order (succ is unbound when reached). The reorder heuristic must not
        // change that — a performance knob may not alter the computed model.
        let program = parse_program("p(M) :- succ(N, M), counter(N).\ncounter(1).")
            .unwrap()
            .program;
        let on = EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        };
        let off = EvalOptions {
            threads: 1,
            reorder_literals: false,
            ..EvalOptions::default()
        };
        let with = seminaive_evaluate(&program, &Database::new(), &on).unwrap();
        let without = seminaive_evaluate(&program, &Database::new(), &off).unwrap();
        assert_eq!(with.database.count("p"), without.database.count("p"));
        assert_eq!(
            with.stats.literal_reorders, 0,
            "builtin bodies never reorder"
        );
    }

    /// Retract helper: evaluate the program over `edb`, retract `gone` edges of `e`,
    /// and return the maintained model, the retraction stats, and the from-scratch
    /// model over the surviving EDB for comparison.
    fn retract_edges(
        program: &Program,
        mut edb: Database,
        gone: &[(i64, i64)],
        options: &EvalOptions,
    ) -> (Database, EvalStats, Database) {
        let compiled = CompiledProgram::compile(program, options).unwrap();
        let mut model = seminaive_evaluate(program, &edb, options).unwrap().database;
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(2);
        for &(a, b) in gone {
            if edb.remove_fact("e", &[c(a), c(b)]) {
                seed.insert(&[c(a), c(b)]);
            }
        }
        seeds.insert(Symbol::intern("e"), seed);
        let stats = seminaive_retract(&compiled, &mut model, &seeds, &edb, options).unwrap();
        let scratch = seminaive_evaluate(program, &edb, options).unwrap().database;
        (model, stats, scratch)
    }

    /// Assert two databases hold the same fact sets (insertion order may differ:
    /// re-derived facts re-enter in maintenance order).
    fn assert_same_facts(a: &Database, b: &Database) {
        let preds = |db: &Database| {
            let mut names: Vec<Symbol> = db
                .iter()
                .filter(|(_, rel)| !rel.is_empty())
                .map(|(p, _)| p)
                .collect();
            names.sort_by_key(|p| p.as_str());
            names
        };
        assert_eq!(preds(a), preds(b));
        for (pred, rel) in a.iter() {
            if rel.is_empty() {
                continue;
            }
            let other = b.relation(pred).expect("relation exists in both");
            assert_eq!(rel.to_sorted_vec(), other.to_sorted_vec(), "{pred} differs");
        }
    }

    #[test]
    fn retract_matches_scratch_on_chain() {
        let program = tc_program();
        let (model, stats, scratch) =
            retract_edges(&program, chain_edb(10), &[(4, 5)], &EvalOptions::default());
        assert_same_facts(&model, &scratch);
        // A 10-edge chain closes to 55 pairs; cutting it at 4-5 kills every path
        // crossing the cut — sources {0..4} × targets {5..10} = 30 pairs.
        assert_eq!(model.count("t"), 55 - 30);
        assert!(stats.retractions > 0);
        assert!(stats.delete_rounds > 0);
    }

    #[test]
    fn retract_rederives_alternative_support() {
        // Two parallel paths 0→1→3 and 0→2→3: retracting e(0, 1) must keep t(0, 3)
        // (re-derived through node 2) while deleting t(0, 1).
        let program = tc_program();
        let mut edb = Database::new();
        for &(a, b) in &[(0i64, 1i64), (1, 3), (0, 2), (2, 3)] {
            edb.add_fact("e", &[c(a), c(b)]);
        }
        let (model, stats, scratch) =
            retract_edges(&program, edb, &[(0, 1)], &EvalOptions::default());
        assert_same_facts(&model, &scratch);
        let t = model.relation(Symbol::intern("t")).unwrap();
        assert!(t.contains(&[c(0), c(3)]), "alternative path must survive");
        assert!(!t.contains(&[c(0), c(1)]));
        assert!(
            stats.rederivations > 0,
            "t(0, 3) is over-deleted then restored by counting"
        );
    }

    #[test]
    fn retract_handles_cycles() {
        // A 2-cycle supports every t fact through recursion; retracting one edge must
        // not let the cycle keep itself alive (the counting-unsound case DRed covers).
        let program = tc_program();
        let mut edb = Database::new();
        edb.add_fact("e", &[c(1), c(2)]);
        edb.add_fact("e", &[c(2), c(1)]);
        let (model, _, scratch) = retract_edges(&program, edb, &[(1, 2)], &EvalOptions::default());
        assert_same_facts(&model, &scratch);
        assert_eq!(
            model.relation(Symbol::intern("t")).unwrap().to_sorted_vec(),
            vec![vec![c(2), c(1)]]
        );
    }

    #[test]
    fn retract_keeps_preloaded_idb_base_facts() {
        // Regression: the evaluator accepts pre-loaded IDB facts (round 0 derives
        // their consequences), so a base fact of a rule-defined predicate must count
        // as support during re-derivation — retracting e(1, 2) over-deletes t(1, 2)
        // AND the independently asserted t(3, 4), and only the former may stay gone.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let mut edb = Database::new();
        edb.add_fact("e", &[c(1), c(2)]);
        edb.add_fact("e", &[c(0), c(1)]);
        // t(1, 2) is BOTH derivable (via e(1, 2)) and a pre-loaded base fact: after
        // the retraction its only remaining support is the base fact itself.
        edb.add_fact("t", &[c(1), c(2)]);
        let options = EvalOptions::default();
        let compiled = CompiledProgram::compile(&program, &options).unwrap();
        let mut model = seminaive_evaluate(&program, &edb, &options)
            .unwrap()
            .database;
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(2);
        edb.remove_fact("e", &[c(1), c(2)]);
        seed.insert(&[c(1), c(2)]);
        seeds.insert(Symbol::intern("e"), seed);
        let stats = seminaive_retract(&compiled, &mut model, &seeds, &edb, &options).unwrap();
        let scratch = seminaive_evaluate(&program, &edb, &options)
            .unwrap()
            .database;
        assert_same_facts(&model, &scratch);
        let t = model.relation(Symbol::intern("t")).unwrap();
        assert!(
            t.contains(&[c(1), c(2)]),
            "base support keeps t(1, 2) alive"
        );
        assert!(
            t.contains(&[c(0), c(2)]),
            "the consequence t(0, 2) = e(0, 1) ∘ t(1, 2) is restored downstream"
        );
        assert!(stats.rederivations > 0, "restored from base support");
    }

    #[test]
    fn retract_of_absent_or_no_op_facts_is_empty() {
        let program = tc_program();
        let (model, stats, scratch) =
            retract_edges(&program, chain_edb(5), &[(40, 41)], &EvalOptions::default());
        assert_same_facts(&model, &scratch);
        assert_eq!(stats.retractions, 0);
        assert_eq!(stats.delete_rounds, 0);
        assert_eq!(model.count("t"), 15);
    }

    #[test]
    fn retract_on_nonlinear_recursion_matches_scratch() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let mut edb = chain_edb(8);
        edb.add_fact("e", &[c(2), c(6)]);
        let (model, _, scratch) = retract_edges(&program, edb, &[(3, 4)], &EvalOptions::default());
        assert_same_facts(&model, &scratch);
    }

    #[test]
    fn parallel_retract_matches_sequential() {
        let program = tc_program();
        let mut edb = chain_edb(25);
        for i in 0..8i64 {
            edb.add_fact("e", &[c(i * 3), c(i)]);
        }
        let gone = [(4i64, 5i64), (12, 13), (2, 0)];
        let (base_model, base_stats, scratch) =
            retract_edges(&program, edb.clone(), &gone, &parallel_options(1));
        assert_same_facts(&base_model, &scratch);
        for threads in [2usize, 4] {
            let (model, stats, _) =
                retract_edges(&program, edb.clone(), &gone, &parallel_options(threads));
            assert_same_model(&base_model, &model);
            assert_eq!(base_stats.retractions, stats.retractions);
            assert_eq!(base_stats.rederivations, stats.rederivations);
            assert_eq!(base_stats.delete_rounds, stats.delete_rounds);
            assert_eq!(base_stats.inferences, stats.inferences);
        }
    }

    #[test]
    fn unarmed_evaluation_never_polls() {
        let program = tc_program();
        let result = seminaive_evaluate(&program, &chain_edb(20), &EvalOptions::default()).unwrap();
        assert_eq!(result.stats.cancel_checks, 0, "no guardrails, no polls");
        assert_eq!(result.stats.limit_aborts, 0);
        assert_eq!(result.stats.worker_panics, 0);
    }

    #[test]
    fn deadline_aborts_unbounded_recursion() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let deadline = std::time::Duration::from_millis(30);
        let options = EvalOptions {
            deadline: Some(deadline),
            ..EvalOptions::default()
        };
        let start = std::time::Instant::now();
        let err = seminaive_evaluate(&program, &Database::new(), &options).unwrap_err();
        let took = start.elapsed();
        let EvalError::LimitExceeded {
            reason: super::super::LimitReason::Deadline { budget, elapsed },
            elapsed: reported,
            partial_stats,
        } = err
        else {
            panic!("expected a deadline abort, got {err}");
        };
        assert_eq!(budget, deadline);
        assert!(elapsed >= deadline);
        assert!(
            reported >= deadline && reported <= took,
            "top-level elapsed must cover the deadline without exceeding the wall clock"
        );
        assert!(
            partial_stats.cancel_checks > 0,
            "the poll did the detecting"
        );
        assert_eq!(partial_stats.limit_aborts, 1);
        // The acceptance bound: the abort lands within 2x the deadline. The unit
        // test uses a much looser wall-clock bound to stay robust on loaded CI
        // machines; the chaos harness checks the 2x bound end to end.
        assert!(
            took < deadline * 20,
            "abort must be prompt, took {took:?} against a {deadline:?} deadline"
        );
    }

    #[test]
    fn preset_cancel_token_aborts_at_the_first_poll() {
        let token = crate::fault::CancelToken::new();
        token.cancel();
        let options = EvalOptions {
            cancel: Some(token),
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&tc_program(), &chain_edb(30), &options).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::LimitExceeded {
                    reason: super::super::LimitReason::Cancelled,
                    ..
                }
            ),
            "expected a cancellation, got {err}"
        );
    }

    #[test]
    fn derived_fact_limit_aborts_with_partial_counters() {
        let options = EvalOptions {
            max_derived_facts: Some(10),
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&tc_program(), &chain_edb(30), &options).unwrap_err();
        let EvalError::LimitExceeded {
            reason: super::super::LimitReason::DerivedFacts { limit, derived },
            partial_stats,
            ..
        } = err
        else {
            panic!("expected a derived-fact abort, got {err}");
        };
        assert_eq!(limit, 10);
        assert!(derived > 10);
        assert_eq!(partial_stats.facts_derived, derived);
    }

    #[test]
    fn memory_budget_aborts_with_the_estimate() {
        let options = EvalOptions {
            memory_budget_bytes: Some(64),
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&tc_program(), &chain_edb(30), &options).unwrap_err();
        assert!(
            matches!(
                err,
                EvalError::LimitExceeded {
                    reason: super::super::LimitReason::MemoryBudget {
                        budget_bytes: 64,
                        estimated_bytes,
                    },
                    ..
                } if estimated_bytes > 64
            ),
            "expected a memory abort, got {err}"
        );
    }

    #[test]
    fn limits_pass_through_when_generous() {
        // Armed-but-unreached guardrails must not change the computed model.
        let options = EvalOptions {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_derived_facts: Some(1_000_000),
            memory_budget_bytes: Some(1 << 30),
            cancel: Some(crate::fault::CancelToken::new()),
            ..EvalOptions::default()
        };
        let governed = seminaive_evaluate(&tc_program(), &chain_edb(20), &options).unwrap();
        let plain =
            seminaive_evaluate(&tc_program(), &chain_edb(20), &EvalOptions::default()).unwrap();
        assert_same_model(&governed.database, &plain.database);
        assert!(governed.stats.cancel_checks > 0, "polls ran and passed");
        assert_eq!(governed.stats.limit_aborts, 0);
    }

    #[test]
    fn injected_error_fault_surfaces_at_every_site() {
        use crate::fault::{FaultAction, FaultInjector};
        // The join-loop site is reached once per POLL_INTERVAL candidate rows,
        // so the evaluation must be big enough to accumulate that many rows on
        // one rule's scratch (a 100-edge chain closes to 5050 facts).
        for site in [FaultSite::JoinOuterLoop, FaultSite::RoundMerge] {
            let options = EvalOptions {
                fault_injector: Some(FaultInjector::armed(site, FaultAction::Error, 0)),
                ..EvalOptions::default()
            };
            let err = seminaive_evaluate(&tc_program(), &chain_edb(100), &options).unwrap_err();
            assert!(
                matches!(err, EvalError::Injected { site: s } if s == site),
                "expected an injected fault at {site}, got {err}"
            );
        }
    }

    #[test]
    fn injected_delete_faults_surface_from_retraction() {
        use crate::fault::{FaultAction, FaultInjector};
        for site in [FaultSite::DeleteOverdelete, FaultSite::DeleteRederive] {
            let program = tc_program();
            let options = EvalOptions {
                fault_injector: Some(FaultInjector::armed(site, FaultAction::Error, 0)),
                ..EvalOptions::default()
            };
            let compiled = CompiledProgram::compile(&program, &options).unwrap();
            let mut edb = Database::new();
            // Parallel paths so the rederive phase actually runs.
            for &(a, b) in &[(0i64, 1i64), (1, 3), (0, 2), (2, 3)] {
                edb.add_fact("e", &[c(a), c(b)]);
            }
            let mut model = seminaive_evaluate(&program, &edb, &EvalOptions::default())
                .unwrap()
                .database;
            let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
            let mut seed = Relation::new(2);
            edb.remove_fact("e", &[c(0), c(1)]);
            seed.insert(&[c(0), c(1)]);
            seeds.insert(Symbol::intern("e"), seed);
            let err = seminaive_retract(&compiled, &mut model, &seeds, &edb, &options).unwrap_err();
            assert!(
                matches!(err, EvalError::Injected { site: s } if s == site),
                "expected an injected fault at {site}, got {err}"
            );
        }
    }

    #[test]
    fn parallel_worker_panic_is_caught_and_structured() {
        use crate::fault::{FaultAction, FaultInjector};
        let options = EvalOptions {
            fault_injector: Some(FaultInjector::armed(
                FaultSite::JoinOuterLoop,
                FaultAction::Panic,
                0,
            )),
            ..parallel_options(4)
        };
        // Big enough that some worker's scratch accumulates POLL_INTERVAL
        // candidate rows and reaches the armed join-loop site.
        let err = seminaive_evaluate(&tc_program(), &chain_edb(100), &options).unwrap_err();
        let EvalError::WorkerPanic {
            message,
            partial_stats,
        } = err
        else {
            panic!("expected a caught worker panic, got {err}");
        };
        assert!(
            message.contains("join-outer-loop"),
            "panic payload must survive: {message}"
        );
        assert_eq!(partial_stats.worker_panics, 1);
    }

    #[test]
    fn stats_iterations_close_to_longest_path() {
        let program = tc_program();
        let edb = chain_edb(12);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // One round per path length plus the seed round and the empty final round.
        assert!(result.stats.iterations >= 12 && result.stats.iterations <= 15);
    }
}
