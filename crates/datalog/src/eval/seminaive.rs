//! Semi-naive bottom-up evaluation.
//!
//! The standard delta-driven fixpoint: each IDB predicate keeps a `full` relation and a
//! `delta` of facts derived in the previous round; in each round a rule with `k` IDB
//! body literals is fired `k` times, once with the delta substituted for each IDB
//! occurrence, so every inference uses at least one fact that is new. Duplicate
//! derivations across the `k` firings are removed by the staging relation.
//!
//! This is the evaluation strategy the paper assumes when it speaks of "semi-naive
//! bottom-up evaluation of the new program" (§1).
//!
//! Two entry points beyond the classic [`seminaive_evaluate`] support the persistent
//! engine (`factorlog-engine`):
//!
//! * [`CompiledProgram`] + [`seminaive_evaluate_compiled`] — compile a program's rules
//!   once and replay the compiled plan over many databases (the prepared-query path);
//! * [`seminaive_resume`] — restart the fixpoint over an *existing* least model with
//!   externally seeded deltas (newly inserted EDB facts), deriving only consequences
//!   that use at least one new fact instead of re-evaluating from scratch.

use std::collections::BTreeSet;

use crate::ast::Program;
use crate::fx::FxHashMap;
use crate::storage::{Database, Relation};
use crate::symbol::Symbol;

use super::join::{CompiledRule, EvalOptions, JoinScratch, RuleAccess};
use super::stats::EvalStats;
use super::{arity_map, EvalError, EvalResult};

/// A program validated and compiled for semi-naive evaluation: the reusable plan.
///
/// Compilation (validation, IDB classification, variable-slot assignment, bound-position
/// analysis, per-predicate index planning) happens once; the plan can then be replayed
/// over any number of databases with [`seminaive_evaluate_compiled`] or resumed
/// incrementally with [`seminaive_resume`]. This is what the prepared-query cache
/// stores.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    program: Program,
    idb: BTreeSet<Symbol>,
    rules: Vec<CompiledRule>,
    /// For each predicate, the column subsets some rule probes it on — the indexes to
    /// maintain on the database relation *and* on the semi-naive delta relations, so
    /// recursive-literal delta joins probe instead of scanning.
    index_plan: FxHashMap<Symbol, Vec<Vec<usize>>>,
}

impl CompiledProgram {
    /// Validate and compile `program`. `options` decides builtin handling at compile
    /// time (the `succ/2` flag is baked into the compiled literals).
    pub fn compile(program: &Program, options: &EvalOptions) -> Result<CompiledProgram, EvalError> {
        crate::validate::check_program(program).map_err(EvalError::Invalid)?;
        let idb = program.idb_predicates();
        let rules: Vec<CompiledRule> = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| CompiledRule::compile(i, r, &|p| idb.contains(&p), options))
            .collect();
        let mut index_plan: FxHashMap<Symbol, Vec<Vec<usize>>> = FxHashMap::default();
        for rule in &rules {
            for literal in &rule.literals {
                if !literal.wants_index() {
                    continue;
                }
                let bound = &literal.bound_positions;
                let sets = index_plan.entry(literal.predicate).or_default();
                if !sets.iter().any(|s| s == bound) {
                    sets.push(bound.clone());
                }
            }
        }
        Ok(CompiledProgram {
            program: program.clone(),
            idb,
            rules,
            index_plan,
        })
    }

    /// The source program this plan was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The IDB predicates (head predicates) of the compiled program.
    pub fn idb(&self) -> &BTreeSet<Symbol> {
        &self.idb
    }

    /// Ensure `db` has a relation for every IDB predicate and every secondary index
    /// the compiled joins will probe; returns the arity map used for staging.
    fn prepare(&self, db: &mut Database) -> FxHashMap<Symbol, usize> {
        let arities = arity_map(&self.program, db);
        for &p in &self.idb {
            let arity = arities.get(&p).copied().unwrap_or(0);
            db.ensure_relation(p, arity);
        }
        for rule in &self.rules {
            rule.ensure_indexes(db, &arities);
        }
        arities
    }

    /// Fresh empty staging relations, one per IDB predicate, pre-indexed according to
    /// the compiled index plan: the staging relation of one round is the delta of the
    /// next, so building its indexes up front (O(1) on an empty relation, maintained
    /// per insert) lets recursive-literal delta joins probe instead of scanning.
    fn empty_staging(&self, arities: &FxHashMap<Symbol, usize>) -> FxHashMap<Symbol, Relation> {
        let mut staging: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for &p in &self.idb {
            let mut relation = Relation::new(arities.get(&p).copied().unwrap_or(0));
            if let Some(sets) = self.index_plan.get(&p) {
                for columns in sets {
                    relation.ensure_index(columns);
                }
            }
            staging.insert(p, relation);
        }
        staging
    }

    /// Per-evaluation join runtimes: resolved access paths plus a reusable scratch per
    /// rule. Build after [`CompiledProgram::prepare`] (index resolution needs the
    /// indexes to exist) and reuse across every round of the fixpoint.
    fn runtimes(&self, db: &Database, stats: &mut EvalStats) -> Vec<RuleRuntime> {
        stats.scratch_allocs += self.rules.len();
        self.rules
            .iter()
            .map(|rule| RuleRuntime {
                access: rule.resolve_access(db),
                scratch: rule.scratch(),
            })
            .collect()
    }
}

/// The per-evaluation mutable join state of one rule.
struct RuleRuntime {
    access: RuleAccess,
    scratch: JoinScratch,
}

/// Evaluate `program` over `edb` with semi-naive iteration.
pub fn seminaive_evaluate(
    program: &Program,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let compiled = CompiledProgram::compile(program, options)?;
    seminaive_evaluate_compiled(&compiled, edb, options)
}

/// Evaluate a pre-compiled plan over `edb` with semi-naive iteration. Equivalent to
/// [`seminaive_evaluate`] but skips validation and rule compilation — the replay path
/// for prepared queries.
pub fn seminaive_evaluate_compiled(
    compiled: &CompiledProgram,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    seminaive_evaluate_owned(compiled, edb.clone(), options)
}

/// Like [`seminaive_evaluate_compiled`] but takes the starting database by value,
/// evaluating in place — for callers that already built a dedicated database (e.g. a
/// prepared plan injecting its seed facts) and don't need a second copy.
pub fn seminaive_evaluate_owned(
    compiled: &CompiledProgram,
    mut db: Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let arities = compiled.prepare(&mut db);
    let mut stats = EvalStats::new(compiled.rules.len());
    let mut runtimes = compiled.runtimes(&db, &mut stats);

    // Round 0: fire every rule against the EDB alone (IDB relations are empty). Exit
    // rules and program facts produce the initial deltas; recursive rules find no IDB
    // facts and contribute nothing. (If the caller pre-loaded IDB facts — e.g. a
    // prepared plan injecting its magic seed — this full pass derives their direct
    // consequences too.)
    let mut delta = compiled.empty_staging(&arities);
    stats.iterations += 1;
    for (rule, runtime) in compiled.rules.iter().zip(&mut runtimes) {
        fire_into(
            rule,
            runtime,
            &db,
            None,
            delta
                .get_mut(&rule.head_predicate)
                .expect("idb delta exists"),
            &mut stats,
        );
    }
    merge_deltas(&mut db, &delta);
    run_fixpoint(
        compiled,
        &mut db,
        delta,
        &arities,
        &mut runtimes,
        options,
        &mut stats,
    )?;

    Ok(EvalResult {
        database: db,
        stats,
    })
}

/// Resume semi-naive evaluation over an existing least `model`, seeded with external
/// deltas — the incremental-maintenance primitive.
///
/// `model` must be a fixpoint of the compiled program over some earlier EDB, with the
/// `seeds` facts **already merged in** (so emission-time duplicate detection sees
/// them); `seeds` holds, per predicate, exactly the facts that are new since that
/// fixpoint. The seed round fires every rule once per body literal whose predicate has
/// a seed delta — EDB predicates included, which is what distinguishes this from an
/// ordinary semi-naive round — so every derivation using at least one new fact is
/// found, and the regular delta-driven fixpoint then propagates the consequences.
/// Returns the statistics of the incremental run; `model` is updated in place.
pub fn seminaive_resume(
    compiled: &CompiledProgram,
    model: &mut Database,
    seeds: &FxHashMap<Symbol, Relation>,
    options: &EvalOptions,
) -> Result<EvalStats, EvalError> {
    let arities = compiled.prepare(model);
    let mut stats = EvalStats::new(compiled.rules.len());
    let mut runtimes = compiled.runtimes(model, &mut stats);

    let mut staging = compiled.empty_staging(&arities);
    stats.iterations += 1;
    for (rule, runtime) in compiled.rules.iter().zip(&mut runtimes) {
        for (pos, literal) in rule.literals.iter().enumerate() {
            let Some(seed_rel) = seeds.get(&literal.predicate) else {
                continue;
            };
            if seed_rel.is_empty() {
                continue;
            }
            let staged = staging
                .get_mut(&rule.head_predicate)
                .expect("idb staging exists");
            fire_into(
                rule,
                runtime,
                model,
                Some((pos, seed_rel)),
                staged,
                &mut stats,
            );
        }
    }
    merge_deltas(model, &staging);
    run_fixpoint(
        compiled,
        model,
        staging,
        &arities,
        &mut runtimes,
        options,
        &mut stats,
    )?;
    Ok(stats)
}

/// The delta-driven fixpoint loop shared by full evaluation and incremental resume:
/// fire each rule once per IDB body literal with the delta substituted at that
/// literal, until no new facts appear.
fn run_fixpoint(
    compiled: &CompiledProgram,
    db: &mut Database,
    mut delta: FxHashMap<Symbol, Relation>,
    arities: &FxHashMap<Symbol, usize>,
    runtimes: &mut [RuleRuntime],
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<(), EvalError> {
    loop {
        if delta.values().all(Relation::is_empty) {
            break;
        }
        if stats.iterations >= options.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        stats.iterations += 1;

        let mut staging = compiled.empty_staging(arities);
        for (rule, runtime) in compiled.rules.iter().zip(runtimes.iter_mut()) {
            for &pos in &rule.idb_literal_positions {
                let body_pred = rule.literals[pos].predicate;
                let delta_rel = delta.get(&body_pred).expect("idb delta exists");
                if delta_rel.is_empty() {
                    continue;
                }
                let staged = staging
                    .get_mut(&rule.head_predicate)
                    .expect("idb staging exists");
                fire_into(rule, runtime, db, Some((pos, delta_rel)), staged, stats);
            }
        }
        // The new delta is the staged facts not already in the full database; `staged`
        // was deduplicated against `db` during emission, so it is the delta directly.
        merge_deltas(db, &staging);
        delta = staging;
    }
    Ok(())
}

/// Fire one rule (optionally with a delta-substituted literal) through its reusable
/// runtime, staging new facts into `staged` and recording statistics. Facts already
/// present in `db` or in `staged` count as duplicates.
fn fire_into(
    rule: &CompiledRule,
    runtime: &mut RuleRuntime,
    db: &Database,
    delta: Option<(usize, &Relation)>,
    staged: &mut Relation,
    stats: &mut EvalStats,
) {
    let head = db.relation(rule.head_predicate);
    rule.fire_with(
        db,
        delta,
        &runtime.access,
        &mut runtime.scratch,
        &mut |tuple| {
            let known = head.map(|r| r.contains(tuple)).unwrap_or(false);
            let is_new = !known && staged.insert(tuple);
            stats.record_inference(rule.rule_index, rule.head_predicate, is_new);
        },
    );
    stats.absorb_join_counters(std::mem::take(&mut runtime.scratch.counters));
}

fn merge_deltas(db: &mut Database, deltas: &FxHashMap<Symbol, Relation>) {
    for (&pred, rel) in deltas {
        if !rel.is_empty() {
            db.ensure_relation(pred, rel.arity()).merge_from(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::eval::naive::naive_evaluate;
    use crate::parser::{parse_program, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn chain_edb(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        db
    }

    fn tc_program() -> Program {
        parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program
    }

    #[test]
    fn matches_naive_on_transitive_closure() {
        let program = tc_program();
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            semi.database.relation(t).unwrap().to_sorted_vec(),
            naive.database.relation(t).unwrap().to_sorted_vec()
        );
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn does_fewer_inferences_than_naive() {
        let program = tc_program();
        let edb = chain_edb(16);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert!(
            semi.stats.inferences < naive.stats.inferences,
            "semi-naive ({}) must beat naive ({}) on a chain",
            semi.stats.inferences,
            naive.stats.inferences
        );
    }

    #[test]
    fn three_rule_transitive_closure_of_the_paper() {
        // Example 1.1: all three recursive forms plus the exit rule.
        let program = parse_program(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
        )
        .unwrap()
        .program;
        let edb = chain_edb(6);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(result.database.count("t"), 21);
        let q = parse_query("t(0, Y)").unwrap();
        assert_eq!(result.database.answers(&q).len(), 6);
    }

    #[test]
    fn handles_program_facts_as_seeds() {
        // The shape of a Magic-transformed program: a seed fact plus a recursive rule.
        let program = parse_program(
            "m_t(5).\n\
             m_t(W) :- m_t(X), e(X, W).\n\
             ft(Y) :- m_t(X), e(X, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 8), (1, 2)] {
            edb.add_fact("e", &[c(a), c(b)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let ft = result.database.relation(Symbol::intern("ft")).unwrap();
        assert_eq!(ft.to_sorted_vec(), vec![vec![c(6)], vec![c(7)], vec![c(8)]]);
        // The magic set never reaches node 1.
        let m = result.database.relation(Symbol::intern("m_t")).unwrap();
        assert!(!m.contains(&[c(1)]));
    }

    #[test]
    fn nonlinear_rule_with_two_idb_literals() {
        // t(X,Y) :- t(X,W), t(W,Y) requires delta firing on both occurrences.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn cyclic_data_terminates() {
        let program = tc_program();
        let mut edb = Database::new();
        for i in 0..10i64 {
            edb.add_fact("e", &[c(i), c((i + 1) % 10)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // Every node reaches every node in a 10-cycle.
        assert_eq!(result.database.count("t"), 100);
    }

    #[test]
    fn iteration_limit_detects_divergence() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 50,
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&program, &Database::new(), &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 50 }));
    }

    #[test]
    fn same_generation_program() {
        // The canonical non-factorable recursion (§6.4): answers must still be correct.
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        // Two-level tree: 1 -> {2, 3}, flat between 2 and 3's children is via flat(4,5).
        edb.add_fact("up", &[c(2), c(4)]);
        edb.add_fact("up", &[c(3), c(5)]);
        edb.add_fact("flat", &[c(4), c(5)]);
        edb.add_fact("down", &[c(5), c(3)]);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let sg = result.database.relation(Symbol::intern("sg")).unwrap();
        assert!(sg.contains(&[c(4), c(5)]));
        assert!(sg.contains(&[c(2), c(3)]));
        assert_eq!(sg.len(), 2);
    }

    #[test]
    fn compiled_plan_replays_across_databases() {
        let program = tc_program();
        let compiled = CompiledProgram::compile(&program, &EvalOptions::default()).unwrap();
        for n in [3i64, 7, 11] {
            let edb = chain_edb(n);
            let via_plan =
                seminaive_evaluate_compiled(&compiled, &edb, &EvalOptions::default()).unwrap();
            let fresh = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
            assert_eq!(via_plan.database.count("t"), fresh.database.count("t"));
        }
        assert_eq!(compiled.program().len(), 2);
        assert!(compiled.idb().contains(&Symbol::intern("t")));
    }

    /// Resume helper: evaluate, then insert `extra` edges incrementally and resume.
    fn resume_after_inserts(
        program: &Program,
        base: i64,
        extra: &[(i64, i64)],
    ) -> (Database, EvalStats) {
        let compiled = CompiledProgram::compile(program, &EvalOptions::default()).unwrap();
        let mut model = seminaive_evaluate(program, &chain_edb(base), &EvalOptions::default())
            .unwrap()
            .database;
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed_rel = Relation::new(2);
        for &(a, b) in extra {
            if model.add_fact("e", &[c(a), c(b)]) {
                seed_rel.insert(&[c(a), c(b)]);
            }
        }
        seeds.insert(Symbol::intern("e"), seed_rel);
        let stats =
            seminaive_resume(&compiled, &mut model, &seeds, &EvalOptions::default()).unwrap();
        (model, stats)
    }

    #[test]
    fn resume_matches_batch_on_edb_extension() {
        let program = tc_program();
        let extra = [(5i64, 0i64), (2, 7), (9, 9)];
        let (incremental, stats) = resume_after_inserts(&program, 8, &extra);

        let mut full_edb = chain_edb(8);
        for &(a, b) in &extra {
            full_edb.add_fact("e", &[c(a), c(b)]);
        }
        let batch = seminaive_evaluate(&program, &full_edb, &EvalOptions::default()).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            incremental.relation(t).unwrap().to_sorted_vec(),
            batch.database.relation(t).unwrap().to_sorted_vec()
        );
        assert!(stats.facts_derived > 0, "the new edges derive new paths");
    }

    #[test]
    fn resume_with_no_op_seed_derives_nothing() {
        let program = tc_program();
        // Re-inserting an existing edge is filtered out by the caller (add_fact returns
        // false), so the seed relation is empty and resume is a no-op.
        let (model, stats) = resume_after_inserts(&program, 6, &[]);
        assert_eq!(model.count("t"), 21);
        assert_eq!(stats.facts_derived, 0);
        assert_eq!(stats.inferences, 0);
    }

    #[test]
    fn resume_does_less_work_than_reevaluation() {
        let program = tc_program();
        let (_, stats) = resume_after_inserts(&program, 40, &[(40, 41)]);
        let mut full_edb = chain_edb(40);
        full_edb.add_fact("e", &[c(40), c(41)]);
        let batch = seminaive_evaluate(&program, &full_edb, &EvalOptions::default()).unwrap();
        assert!(
            stats.inferences < batch.stats.inferences / 2,
            "incremental ({}) must be far cheaper than batch ({})",
            stats.inferences,
            batch.stats.inferences
        );
    }

    #[test]
    fn resume_handles_nonlinear_rules_and_idb_seeds() {
        // Seeding an IDB predicate directly (a user asserting a derived fact) must
        // propagate through both occurrences of the nonlinear recursion.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let compiled = CompiledProgram::compile(&program, &EvalOptions::default()).unwrap();
        let mut model = seminaive_evaluate(&program, &chain_edb(4), &EvalOptions::default())
            .unwrap()
            .database;
        // Assert t(4, 100) as a fact: every t(x, 4) now extends to t(x, 100).
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(2);
        model.add_fact("t", &[c(4), c(100)]);
        seed.insert(&[c(4), c(100)]);
        seeds.insert(Symbol::intern("t"), seed);
        seminaive_resume(&compiled, &mut model, &seeds, &EvalOptions::default()).unwrap();
        let t = model.relation(Symbol::intern("t")).unwrap();
        for x in 0..4 {
            assert!(t.contains(&[c(x), c(100)]), "t({x}, 100) must be derived");
        }
    }

    #[test]
    fn resume_respects_iteration_limit() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 20,
            ..EvalOptions::default()
        };
        let compiled = CompiledProgram::compile(&program, &options).unwrap();
        // Build a model by hand (the full evaluation would diverge as well).
        let mut model = Database::new();
        model.add_fact("counter", &[c(0)]);
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        let mut seed = Relation::new(1);
        seed.insert(&[c(0)]);
        seeds.insert(Symbol::intern("counter"), seed);
        let err = seminaive_resume(&compiled, &mut model, &seeds, &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 20 }));
    }

    #[test]
    fn delta_joins_probe_indexes_instead_of_scanning() {
        // In `t(X, Y) :- e(X, W), t(W, Y).` the fixpoint substitutes the delta at the
        // recursive literal; the staging relations carry the compiled index plan, so
        // each e-row probes the delta on its bound column instead of scanning it.
        let program = tc_program();
        let n = 50i64;
        let result = seminaive_evaluate(&program, &chain_edb(n), &EvalOptions::default()).unwrap();
        let stats = &result.stats;
        // Every delta round scans e once (depth 0) and probes the delta once per
        // e-row: index probes must dominate scans by roughly the e-row count.
        assert!(
            stats.index_probes > stats.full_scans * (n as usize / 2),
            "delta joins must probe: {} probes vs {} scans",
            stats.index_probes,
            stats.full_scans
        );
        // Scratch buffers are allocated once per rule and reused across all rounds.
        assert_eq!(stats.scratch_allocs, program.rules.len());
        assert!(stats.iterations > 10, "the chain needs many delta rounds");
    }

    #[test]
    fn resume_delta_rounds_probe_indexes() {
        let program = tc_program();
        let (_, stats) = resume_after_inserts(&program, 40, &[(40, 41)]);
        assert!(
            stats.index_probes > 0,
            "incremental delta rounds must use index probes"
        );
        assert_eq!(
            stats.scratch_allocs,
            program.rules.len(),
            "one reusable scratch per rule per resume"
        );
    }

    #[test]
    fn stats_iterations_close_to_longest_path() {
        let program = tc_program();
        let edb = chain_edb(12);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // One round per path length plus the seed round and the empty final round.
        assert!(result.stats.iterations >= 12 && result.stats.iterations <= 15);
    }
}
