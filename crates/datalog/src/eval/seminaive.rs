//! Semi-naive bottom-up evaluation.
//!
//! The standard delta-driven fixpoint: each IDB predicate keeps a `full` relation and a
//! `delta` of facts derived in the previous round; in each round a rule with `k` IDB
//! body literals is fired `k` times, once with the delta substituted for each IDB
//! occurrence, so every inference uses at least one fact that is new. Duplicate
//! derivations across the `k` firings are removed by the staging relation.
//!
//! This is the evaluation strategy the paper assumes when it speaks of "semi-naive
//! bottom-up evaluation of the new program" (§1).

use crate::ast::Program;
use crate::fx::FxHashMap;
use crate::storage::{Database, Relation};
use crate::symbol::Symbol;

use super::join::{CompiledRule, EvalOptions};
use super::stats::EvalStats;
use super::{arity_map, EvalError, EvalResult};

/// Evaluate `program` over `edb` with semi-naive iteration.
pub fn seminaive_evaluate(
    program: &Program,
    edb: &Database,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    crate::validate::check_program(program).map_err(EvalError::Invalid)?;

    let idb: std::collections::BTreeSet<Symbol> = program.idb_predicates();
    let arities = arity_map(program, edb);
    let mut db = edb.clone();
    for &p in &idb {
        let arity = arities.get(&p).copied().unwrap_or(0);
        db.ensure_relation(p, arity);
    }

    let compiled: Vec<CompiledRule> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| CompiledRule::compile(i, r, &|p| idb.contains(&p), options))
        .collect();
    for rule in &compiled {
        rule.ensure_indexes(&mut db, &arities);
    }

    let mut stats = EvalStats::new(program.rules.len());

    // Round 0: fire every rule against the EDB alone (IDB relations are empty). Exit
    // rules and program facts produce the initial deltas; recursive rules find no IDB
    // facts and contribute nothing.
    let mut delta: FxHashMap<Symbol, Relation> = FxHashMap::default();
    for &p in &idb {
        delta.insert(p, Relation::new(arities.get(&p).copied().unwrap_or(0)));
    }
    stats.iterations += 1;
    for rule in &compiled {
        fire_into(
            rule,
            &db,
            None,
            delta.get_mut(&rule.head_predicate).expect("idb delta exists"),
            &mut stats,
        );
    }
    merge_deltas(&mut db, &delta);

    // Subsequent rounds: fire each rule once per IDB body literal, with the delta
    // substituted at that literal.
    loop {
        if delta.values().all(Relation::is_empty) {
            break;
        }
        if stats.iterations >= options.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        stats.iterations += 1;

        let mut staging: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for &p in &idb {
            staging.insert(p, Relation::new(arities.get(&p).copied().unwrap_or(0)));
        }
        for rule in &compiled {
            for &pos in &rule.idb_literal_positions {
                let body_pred = rule.literals[pos].predicate;
                let delta_rel = delta.get(&body_pred).expect("idb delta exists");
                if delta_rel.is_empty() {
                    continue;
                }
                let staged = staging
                    .get_mut(&rule.head_predicate)
                    .expect("idb staging exists");
                fire_into(rule, &db, Some((pos, delta_rel)), staged, &mut stats);
            }
        }
        // The new delta is the staged facts not already in the full database; `staged`
        // was deduplicated against `db` during emission, so it is the delta directly.
        merge_deltas(&mut db, &staging);
        delta = staging;
    }

    Ok(EvalResult {
        database: db,
        stats,
    })
}

/// Fire one rule (optionally with a delta-substituted literal), staging new facts into
/// `staged` and recording statistics. Facts already present in `db` or in `staged`
/// count as duplicates.
fn fire_into(
    rule: &CompiledRule,
    db: &Database,
    delta: Option<(usize, &Relation)>,
    staged: &mut Relation,
    stats: &mut EvalStats,
) {
    let mut outcomes: Vec<bool> = Vec::new();
    rule.fire(db, delta, &mut |tuple| {
        let known = db
            .relation(rule.head_predicate)
            .map(|r| r.contains(tuple))
            .unwrap_or(false);
        let is_new = !known && staged.insert(tuple);
        outcomes.push(is_new);
    });
    for is_new in outcomes {
        stats.record_inference(rule.rule_index, rule.head_predicate, is_new);
    }
}

fn merge_deltas(db: &mut Database, deltas: &FxHashMap<Symbol, Relation>) {
    for (&pred, rel) in deltas {
        if !rel.is_empty() {
            db.ensure_relation(pred, rel.arity()).merge_from(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::eval::naive::naive_evaluate;
    use crate::parser::{parse_program, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn chain_edb(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        db
    }

    fn tc_program() -> Program {
        parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program
    }

    #[test]
    fn matches_naive_on_transitive_closure() {
        let program = tc_program();
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            semi.database.relation(t).unwrap().to_sorted_vec(),
            naive.database.relation(t).unwrap().to_sorted_vec()
        );
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn does_fewer_inferences_than_naive() {
        let program = tc_program();
        let edb = chain_edb(16);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let naive = naive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert!(
            semi.stats.inferences < naive.stats.inferences,
            "semi-naive ({}) must beat naive ({}) on a chain",
            semi.stats.inferences,
            naive.stats.inferences
        );
    }

    #[test]
    fn three_rule_transitive_closure_of_the_paper() {
        // Example 1.1: all three recursive forms plus the exit rule.
        let program = parse_program(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
        )
        .unwrap()
        .program;
        let edb = chain_edb(6);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(result.database.count("t"), 21);
        let q = parse_query("t(0, Y)").unwrap();
        assert_eq!(result.database.answers(&q).len(), 6);
    }

    #[test]
    fn handles_program_facts_as_seeds() {
        // The shape of a Magic-transformed program: a seed fact plus a recursive rule.
        let program = parse_program(
            "m_t(5).\n\
             m_t(W) :- m_t(X), e(X, W).\n\
             ft(Y) :- m_t(X), e(X, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 8), (1, 2)] {
            edb.add_fact("e", &[c(a), c(b)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let ft = result.database.relation(Symbol::intern("ft")).unwrap();
        assert_eq!(ft.to_sorted_vec(), vec![vec![c(6)], vec![c(7)], vec![c(8)]]);
        // The magic set never reaches node 1.
        let m = result.database.relation(Symbol::intern("m_t")).unwrap();
        assert!(!m.contains(&[c(1)]));
    }

    #[test]
    fn nonlinear_rule_with_two_idb_literals() {
        // t(X,Y) :- t(X,W), t(W,Y) requires delta firing on both occurrences.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let edb = chain_edb(8);
        let semi = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        assert_eq!(semi.database.count("t"), 36);
    }

    #[test]
    fn cyclic_data_terminates() {
        let program = tc_program();
        let mut edb = Database::new();
        for i in 0..10i64 {
            edb.add_fact("e", &[c(i), c((i + 1) % 10)]);
        }
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // Every node reaches every node in a 10-cycle.
        assert_eq!(result.database.count("t"), 100);
    }

    #[test]
    fn iteration_limit_detects_divergence() {
        let program = parse_program("counter(0).\ncounter(M) :- counter(N), succ(N, M).")
            .unwrap()
            .program;
        let options = EvalOptions {
            max_iterations: 50,
            ..EvalOptions::default()
        };
        let err = seminaive_evaluate(&program, &Database::new(), &options).unwrap_err();
        assert!(matches!(err, EvalError::IterationLimit { limit: 50 }));
    }

    #[test]
    fn same_generation_program() {
        // The canonical non-factorable recursion (§6.4): answers must still be correct.
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
        )
        .unwrap()
        .program;
        let mut edb = Database::new();
        // Two-level tree: 1 -> {2, 3}, flat between 2 and 3's children is via flat(4,5).
        edb.add_fact("up", &[c(2), c(4)]);
        edb.add_fact("up", &[c(3), c(5)]);
        edb.add_fact("flat", &[c(4), c(5)]);
        edb.add_fact("down", &[c(5), c(3)]);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        let sg = result.database.relation(Symbol::intern("sg")).unwrap();
        assert!(sg.contains(&[c(4), c(5)]));
        assert!(sg.contains(&[c(2), c(3)]));
        assert_eq!(sg.len(), 2);
    }

    #[test]
    fn stats_iterations_close_to_longest_path() {
        let program = tc_program();
        let edb = chain_edb(12);
        let result = seminaive_evaluate(&program, &edb, &EvalOptions::default()).unwrap();
        // One round per path length plus the seed round and the empty final round.
        assert!(result.stats.iterations >= 12 && result.stats.iterations <= 15);
    }
}
