//! Derivation trees (Definition 2.1 of the paper) and a provenance-tracking evaluator.
//!
//! A derivation tree for a fact records which rule instance produced it and derivation
//! trees for the body facts. The paper's factorability proofs (Theorems 4.1–4.3,
//! Figures 3–6) argue by induction on the height of derivation trees; the tests in this
//! repository use this module to check the structural claims those figures illustrate
//! (e.g. that every `fp` fact of a factored program has a corresponding `p^a(x0, a)`
//! derivation in the Magic program).
//!
//! The provenance evaluator is a straightforward naive evaluator that remembers, for
//! every derived fact, the *first* rule instance that produced it; because facts are
//! only justified by facts derived in earlier rounds (or EDB facts), the recorded
//! justifications are acyclic and reconstruction always terminates.

use std::fmt;

use crate::ast::{Atom, Const, Program, Rule, Substitution, Term};
use crate::fx::FxHashMap;
use crate::storage::Database;
use crate::symbol::Symbol;

/// A derivation tree for a fact.
#[derive(Clone, Debug, PartialEq)]
pub struct DerivationTree {
    /// The derived (or EDB) fact at the root.
    pub fact: Atom,
    /// The index of the rule whose instance derived this fact; `None` for EDB facts.
    pub rule_index: Option<usize>,
    /// Derivation trees for the body facts of the rule instance.
    pub children: Vec<DerivationTree>,
}

impl DerivationTree {
    /// A leaf tree for an EDB fact.
    pub fn leaf(fact: Atom) -> DerivationTree {
        DerivationTree {
            fact,
            rule_index: None,
            children: Vec::new(),
        }
    }

    /// The height of the tree (a leaf has height 1, as in Definition 2.1's induction).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationTree::height)
            .max()
            .unwrap_or(0)
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(DerivationTree::size)
            .sum::<usize>()
    }

    /// Every fact appearing in the tree (pre-order).
    pub fn facts(&self) -> Vec<&Atom> {
        let mut out = vec![&self.fact];
        for child in &self.children {
            out.extend(child.facts());
        }
        out
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        match self.rule_index {
            Some(i) => writeln!(f, "{}   [rule {}]", self.fact, i)?,
            None => writeln!(f, "{}   [edb]", self.fact)?,
        }
        for child in &self.children {
            child.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for DerivationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// One recorded justification: the rule index and the ground body atoms used.
#[derive(Clone, Debug)]
struct Justification {
    rule_index: usize,
    body: Vec<Atom>,
}

/// A provenance-tracking evaluator. Build it with [`ProvenanceEvaluator::run`], then ask
/// for derivation trees of derived facts.
#[derive(Clone, Debug)]
pub struct ProvenanceEvaluator {
    database: Database,
    justifications: FxHashMap<Atom, Justification>,
    idb: std::collections::BTreeSet<Symbol>,
}

impl ProvenanceEvaluator {
    /// Run naive evaluation of `program` over `edb`, recording one justification per
    /// derived fact. Not intended for large workloads; use the main evaluators for
    /// performance measurements.
    pub fn run(program: &Program, edb: &Database) -> ProvenanceEvaluator {
        let idb = program.idb_predicates();
        let mut database = edb.clone();
        let mut justifications: FxHashMap<Atom, Justification> = FxHashMap::default();
        loop {
            let mut new_facts: Vec<(Atom, Justification)> = Vec::new();
            for (rule_index, rule) in program.rules.iter().enumerate() {
                let mut subst = Substitution::new();
                enumerate(rule, 0, &database, &mut subst, &mut |s| {
                    let head = rule.head.apply(s);
                    debug_assert!(head.is_ground(), "safe rules produce ground heads");
                    if !database.contains_atom(&head) {
                        let body = rule.body.iter().map(|a| a.apply(s)).collect();
                        new_facts.push((head, Justification { rule_index, body }));
                    }
                });
            }
            let mut any = false;
            for (fact, justification) in new_facts {
                if database.add_atom(&fact) {
                    justifications.insert(fact, justification);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        ProvenanceEvaluator {
            database,
            justifications,
            idb,
        }
    }

    /// The computed model (EDB plus derived facts).
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Is `fact` in the computed model?
    pub fn holds(&self, fact: &Atom) -> bool {
        self.database.contains_atom(fact)
    }

    /// Reconstruct a derivation tree for `fact`, if it is in the model.
    pub fn derivation_tree(&self, fact: &Atom) -> Option<DerivationTree> {
        if !self.holds(fact) {
            return None;
        }
        if !self.idb.contains(&fact.predicate) || !self.justifications.contains_key(fact) {
            return Some(DerivationTree::leaf(fact.clone()));
        }
        let justification = &self.justifications[fact];
        let children = justification
            .body
            .iter()
            .map(|b| {
                self.derivation_tree(b)
                    .expect("justification bodies are facts of the model")
            })
            .collect();
        Some(DerivationTree {
            fact: fact.clone(),
            rule_index: Some(justification.rule_index),
            children,
        })
    }
}

/// Enumerate all substitutions grounding `rule.body[from..]` against `db`, extending
/// `subst`, and call `emit` for each complete substitution.
fn enumerate(
    rule: &Rule,
    from: usize,
    db: &Database,
    subst: &mut Substitution,
    emit: &mut dyn FnMut(&Substitution),
) {
    if from == rule.body.len() {
        emit(subst);
        return;
    }
    let atom = &rule.body[from];
    let Some(relation) = db.relation(atom.predicate) else {
        return;
    };
    if relation.arity() != atom.arity() {
        return;
    }
    let pattern: Vec<Option<Const>> = atom
        .terms
        .iter()
        .map(|t| match subst.apply_term(*t) {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        })
        .collect();
    let mut rows = Vec::new();
    relation.select(&pattern, &mut rows);
    for row_id in rows {
        let row = relation.row(row_id);
        let mut added: Vec<Symbol> = Vec::new();
        let mut ok = true;
        for (term, value) in atom.terms.iter().zip(row.iter()) {
            match subst.apply_term(*term) {
                Term::Const(c) => {
                    if c != *value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    subst.insert(v, *value);
                    added.push(v);
                }
            }
        }
        if ok {
            enumerate(rule, from + 1, db, subst, emit);
        }
        for v in added {
            subst.insert_term(v, Term::Var(v));
        }
    }
    // Restore: remove the self-mappings we used to "unbind" (a variable mapped to
    // itself behaves as unbound for apply_term, but clean up for clarity).
    let _ = subst;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_atom, parse_program};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn chain_edb(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[c(i), c(i + 1)]);
        }
        db
    }

    #[test]
    fn edb_facts_are_leaves() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let prov = ProvenanceEvaluator::run(&program, &chain_edb(3));
        let tree = prov
            .derivation_tree(&parse_atom("e(0, 1)").unwrap())
            .unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.rule_index, None);
    }

    #[test]
    fn derived_facts_have_rule_justifications() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let prov = ProvenanceEvaluator::run(&program, &chain_edb(4));
        let tree = prov
            .derivation_tree(&parse_atom("t(0, 4)").unwrap())
            .unwrap();
        // t(0,4) needs the recursive rule at the root.
        assert_eq!(tree.rule_index, Some(1));
        assert_eq!(tree.children.len(), 2);
        // Height: e(0,1) leaf under each recursive step: the chain of length 4 gives
        // height 5 (4 rule applications plus a leaf).
        assert_eq!(tree.height(), 5);
        assert!(tree.size() >= 8);
    }

    #[test]
    fn derivation_exists_iff_fact_in_least_model() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let prov = ProvenanceEvaluator::run(&program, &chain_edb(4));
        assert!(prov
            .derivation_tree(&parse_atom("t(1, 3)").unwrap())
            .is_some());
        assert!(prov
            .derivation_tree(&parse_atom("t(3, 1)").unwrap())
            .is_none());
        assert!(prov.holds(&parse_atom("t(0, 1)").unwrap()));
        assert!(!prov.holds(&parse_atom("t(4, 0)").unwrap()));
    }

    #[test]
    fn justification_bodies_are_earlier_facts() {
        // The derivation of t(0,3) must not be circular: every child fact is either an
        // EDB fact or has its own strictly smaller derivation.
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).")
            .unwrap()
            .program;
        let prov = ProvenanceEvaluator::run(&program, &chain_edb(8));
        let tree = prov
            .derivation_tree(&parse_atom("t(0, 7)").unwrap())
            .unwrap();
        fn check_acyclic(tree: &DerivationTree) {
            for child in &tree.children {
                assert_ne!(child.fact, tree.fact, "a fact must not justify itself");
                check_acyclic(child);
            }
        }
        check_acyclic(&tree);
        assert!(tree.height() >= 3);
    }

    #[test]
    fn display_is_indented() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let prov = ProvenanceEvaluator::run(&program, &chain_edb(2));
        let tree = prov
            .derivation_tree(&parse_atom("t(0, 1)").unwrap())
            .unwrap();
        let text = format!("{tree}");
        assert!(text.contains("t(0, 1)   [rule 0]"));
        assert!(text.contains("  e(0, 1)   [edb]"));
    }

    #[test]
    fn facts_lists_every_node() {
        let program = parse_program("p(X) :- a(X), b(X).").unwrap().program;
        let mut edb = Database::new();
        edb.add_fact("a", &[c(1)]);
        edb.add_fact("b", &[c(1)]);
        let prov = ProvenanceEvaluator::run(&program, &edb);
        let tree = prov.derivation_tree(&parse_atom("p(1)").unwrap()).unwrap();
        assert_eq!(tree.facts().len(), 3);
    }

    #[test]
    fn model_matches_plain_evaluation() {
        let program =
            parse_program("t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n q(Y) :- t(0, Y).")
                .unwrap()
                .program;
        let edb = chain_edb(5);
        let prov = ProvenanceEvaluator::run(&program, &edb);
        let eval = crate::eval::evaluate_default(&program, &edb).unwrap();
        let t = Symbol::intern("t");
        assert_eq!(
            prov.database().relation(t).unwrap().to_sorted_vec(),
            eval.database.relation(t).unwrap().to_sorted_vec()
        );
        let q = Symbol::intern("q");
        assert_eq!(
            prov.database().relation(q).unwrap().to_sorted_vec(),
            eval.database.relation(q).unwrap().to_sorted_vec()
        );
    }
}
