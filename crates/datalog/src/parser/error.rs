//! Parse errors with source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl Position {
    /// The start of the input.
    pub fn start() -> Position {
        Position { line: 1, column: 1 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while lexing or parsing Datalog source text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the error occurred.
    pub position: Position,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Construct an error at `position`.
    pub fn new(position: Position, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parser functions.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_message() {
        let err = ParseError::new(Position { line: 3, column: 7 }, "unexpected token");
        assert_eq!(format!("{err}"), "parse error at 3:7: unexpected token");
    }

    #[test]
    fn start_position() {
        let p = Position::start();
        assert_eq!(p.line, 1);
        assert_eq!(p.column, 1);
    }
}
