//! Recursive-descent parser for the Datalog surface syntax.
//!
//! The entry points are [`parse_program`] (a whole source file: rules, facts and an
//! optional `?- query.`), [`parse_rule`], [`parse_atom`] and [`parse_query`].
//!
//! Anonymous variables written `_` are replaced by fresh variables so that each `_`
//! occurrence is independent, matching the paper's use of "anonymous" argument
//! positions (§5, Proposition 5.5).

pub mod error;
pub mod lexer;

pub use error::{ParseError, ParseResult, Position};

use crate::ast::{Atom, Program, Query, Rule, Term};
use crate::symbol::Symbol;
use lexer::{tokenize, SpannedToken, Token};

/// The result of parsing a source file.
#[derive(Clone, Debug, Default)]
pub struct ParseOutput {
    /// All rules, including ground facts written in the source.
    pub program: Program,
    /// The queries (`?- atom.`) in source order.
    pub queries: Vec<Query>,
}

impl ParseOutput {
    /// The first query, if any.
    pub fn query(&self) -> Option<&Query> {
        self.queries.first()
    }

    /// Split the parsed rules into a program of proper rules and a list of ground
    /// facts (rules with an empty body and a ground head). Program facts whose
    /// predicate also appears as the head of a non-fact rule stay in the program (they
    /// are IDB seeds, such as the paper's `m_tbf(5).`).
    pub fn split_facts(&self) -> (Program, Vec<Atom>) {
        let idb_with_rules: std::collections::BTreeSet<Symbol> = self
            .program
            .rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head.predicate)
            .collect();
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        for rule in &self.program.rules {
            if rule.is_fact()
                && rule.head.is_ground()
                && !idb_with_rules.contains(&rule.head.predicate)
            {
                facts.push(rule.head.clone());
            } else {
                rules.push(rule.clone());
            }
        }
        (Program::from_rules(rules), facts)
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    cursor: usize,
    anon_counter: u64,
}

impl Parser {
    fn new(input: &str) -> ParseResult<Parser> {
        Ok(Parser {
            tokens: tokenize(input)?,
            cursor: 0,
            anon_counter: 0,
        })
    }

    fn peek(&self) -> &SpannedToken {
        &self.tokens[self.cursor]
    }

    fn advance(&mut self) -> SpannedToken {
        let token = self.tokens[self.cursor].clone();
        if self.cursor + 1 < self.tokens.len() {
            self.cursor += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token, what: &str) -> ParseResult<()> {
        let found = self.peek().clone();
        if &found.token == expected {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                found.position,
                format!("expected {what} but found {}", found.token.describe()),
            ))
        }
    }

    fn fresh_anonymous(&mut self) -> Term {
        self.anon_counter += 1;
        Term::Var(Symbol::intern(&format!("_anon{}", self.anon_counter)))
    }

    fn parse_term(&mut self) -> ParseResult<Term> {
        let tok = self.advance();
        match tok.token {
            Token::UpperIdent(name) => {
                if name == "_" {
                    Ok(self.fresh_anonymous())
                } else {
                    Ok(Term::Var(Symbol::intern(&name)))
                }
            }
            Token::LowerIdent(name) => Ok(Term::sym(&name)),
            Token::Integer(value) => Ok(Term::int(value)),
            Token::QuotedString(value) => Ok(Term::sym(&value)),
            other => Err(ParseError::new(
                tok.position,
                format!("expected a term but found {}", other.describe()),
            )),
        }
    }

    fn parse_atom(&mut self) -> ParseResult<Atom> {
        let tok = self.advance();
        let predicate = match tok.token {
            Token::LowerIdent(name) => Symbol::intern(&name),
            other => {
                return Err(ParseError::new(
                    tok.position,
                    format!("expected a predicate name but found {}", other.describe()),
                ));
            }
        };
        let mut terms = Vec::new();
        if self.peek().token == Token::LParen {
            self.advance();
            if self.peek().token == Token::RParen {
                let pos = self.peek().position;
                return Err(ParseError::new(
                    pos,
                    "empty argument list; omit the parentheses for a zero-arity atom",
                ));
            }
            loop {
                terms.push(self.parse_term()?);
                match &self.peek().token {
                    Token::Comma => {
                        self.advance();
                    }
                    Token::RParen => {
                        self.advance();
                        break;
                    }
                    other => {
                        let pos = self.peek().position;
                        return Err(ParseError::new(
                            pos,
                            format!("expected `,` or `)` but found {}", other.describe()),
                        ));
                    }
                }
            }
        }
        Ok(Atom::new(predicate, terms))
    }

    fn parse_clause(&mut self) -> ParseResult<Clause> {
        if self.peek().token == Token::QueryMark {
            self.advance();
            let atom = self.parse_atom()?;
            self.expect(&Token::Dot, "`.`")?;
            return Ok(Clause::Query(Query::new(atom)));
        }
        let head = self.parse_atom()?;
        match &self.peek().token {
            Token::Dot => {
                self.advance();
                Ok(Clause::Rule(Rule::fact(head)))
            }
            Token::Implies => {
                self.advance();
                let mut body = Vec::new();
                loop {
                    body.push(self.parse_atom()?);
                    match &self.peek().token {
                        Token::Comma => {
                            self.advance();
                        }
                        Token::Dot => {
                            self.advance();
                            break;
                        }
                        other => {
                            let pos = self.peek().position;
                            return Err(ParseError::new(
                                pos,
                                format!("expected `,` or `.` but found {}", other.describe()),
                            ));
                        }
                    }
                }
                Ok(Clause::Rule(Rule::new(head, body)))
            }
            other => {
                let pos = self.peek().position;
                Err(ParseError::new(
                    pos,
                    format!("expected `.` or `:-` but found {}", other.describe()),
                ))
            }
        }
    }

    fn parse_program(&mut self) -> ParseResult<ParseOutput> {
        let mut output = ParseOutput::default();
        while self.peek().token != Token::Eof {
            match self.parse_clause()? {
                Clause::Rule(rule) => output.program.push(rule),
                Clause::Query(query) => output.queries.push(query),
            }
        }
        Ok(output)
    }
}

enum Clause {
    Rule(Rule),
    Query(Query),
}

/// Parse a whole source file: rules, facts and zero or more `?- query.` clauses.
pub fn parse_program(input: &str) -> ParseResult<ParseOutput> {
    Parser::new(input)?.parse_program()
}

/// Parse a single rule or fact (terminated by `.`).
pub fn parse_rule(input: &str) -> ParseResult<Rule> {
    let mut parser = Parser::new(input)?;
    match parser.parse_clause()? {
        Clause::Rule(rule) => {
            parser.expect(&Token::Eof, "end of input")?;
            Ok(rule)
        }
        Clause::Query(_) => Err(ParseError::new(
            Position::start(),
            "expected a rule, found a query",
        )),
    }
}

/// Parse a single atom, e.g. `t(5, Y)` (no trailing `.`).
pub fn parse_atom(input: &str) -> ParseResult<Atom> {
    let mut parser = Parser::new(input)?;
    let atom = parser.parse_atom()?;
    parser.expect(&Token::Eof, "end of input")?;
    Ok(atom)
}

/// Parse a query of either form `?- t(5, Y).` or `t(5, Y)?` is not supported; use the
/// `?- ... .` form or pass a bare atom (without punctuation).
pub fn parse_query(input: &str) -> ParseResult<Query> {
    let trimmed = input.trim();
    if trimmed.starts_with("?-") {
        let mut parser = Parser::new(trimmed)?;
        match parser.parse_clause()? {
            Clause::Query(q) => Ok(q),
            Clause::Rule(_) => Err(ParseError::new(Position::start(), "expected a query")),
        }
    } else {
        Ok(Query::new(parse_atom(trimmed)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_rule_transitive_closure() {
        // Example 1.1 of the paper.
        let src = "
            t(X, Y) :- t(X, W), t(W, Y).
            t(X, Y) :- e(X, W), t(W, Y).
            t(X, Y) :- t(X, W), e(W, Y).
            t(X, Y) :- e(X, Y).
            ?- t(5, Y).
        ";
        let out = parse_program(src).unwrap();
        assert_eq!(out.program.len(), 4);
        assert_eq!(out.queries.len(), 1);
        assert_eq!(out.query().unwrap().adornment(), "bf");
        assert_eq!(
            format!("{}", out.program.rules[0]),
            "t(X, Y) :- t(X, W), t(W, Y)."
        );
    }

    #[test]
    fn parses_facts_and_splits_them() {
        let src = "
            t(X, Y) :- e(X, Y).
            e(1, 2).
            e(2, 3).
            seed(5).
            seed(W) :- seed(X), e(X, W).
        ";
        let out = parse_program(src).unwrap();
        let (program, facts) = out.split_facts();
        // e/2 facts are EDB; seed(5) stays in the program because seed has rules.
        assert_eq!(facts.len(), 2);
        assert_eq!(program.len(), 3);
        assert!(program
            .rules
            .iter()
            .any(|r| r.is_fact() && r.head.predicate == Symbol::intern("seed")));
    }

    #[test]
    fn parses_symbolic_constants_and_strings() {
        let rule = parse_rule("likes(alice, \"ice cream\").").unwrap();
        assert!(rule.is_fact());
        assert_eq!(format!("{}", rule.head), "likes(alice, ice cream)");
    }

    #[test]
    fn parses_zero_arity_atoms() {
        let rule = parse_rule("goal :- p(X).").unwrap();
        assert_eq!(rule.head.arity(), 0);
        assert_eq!(format!("{rule}"), "goal :- p(X).");
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let rule = parse_rule("p(X) :- q(X, _), r(_, X).").unwrap();
        let v1 = rule.body[0].terms[1].as_var().unwrap();
        let v2 = rule.body[1].terms[0].as_var().unwrap();
        assert_ne!(v1, v2, "each `_` must become a distinct variable");
    }

    #[test]
    fn parse_atom_and_query_helpers() {
        let atom = parse_atom("t(5, Y)").unwrap();
        assert_eq!(atom.arity(), 2);
        let q = parse_query("?- t(5, Y).").unwrap();
        assert_eq!(q.adornment(), "bf");
        let q2 = parse_query("t(5, Y)").unwrap();
        assert_eq!(q2, q);
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse_program("p(X) :- q(X)\np(Y).").unwrap_err();
        assert_eq!(
            err.position.line, 2,
            "error should point at the second line"
        );
        let err = parse_rule("p(X) :- .").unwrap_err();
        assert!(err.message.contains("expected a predicate name"));
        let err = parse_rule("p().").unwrap_err();
        assert!(err.message.contains("empty argument list"));
        let err = parse_atom("t(5, Y) extra").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn rejects_query_in_parse_rule() {
        let err = parse_rule("?- p(X).").unwrap_err();
        assert!(err.message.contains("expected a rule"));
    }

    #[test]
    fn roundtrip_display_then_parse() {
        let src = "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
        let out = parse_program(src).unwrap();
        let printed = format!("{}", out.program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(out.program, reparsed.program);
    }
}
