//! Tokenizer for the Datalog surface syntax.
//!
//! The syntax follows the paper's notation closely:
//!
//! ```text
//! % transitive closure
//! t(X, Y) :- e(X, W), t(W, Y).
//! t(X, Y) :- e(X, Y).
//! e(1, 2).
//! ?- t(5, Y).
//! ```
//!
//! Identifiers beginning with an uppercase letter or `_` are variables; identifiers
//! beginning with a lowercase letter are predicate names or symbolic constants
//! (disambiguated by position during parsing). `%` starts a line comment.

use super::error::{ParseError, ParseResult, Position};

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// A lowercase-initial identifier: predicate name or symbolic constant.
    LowerIdent(String),
    /// An uppercase- or underscore-initial identifier: a variable.
    UpperIdent(String),
    /// An integer literal (optionally negative).
    Integer(i64),
    /// A quoted string literal, used as a symbolic constant.
    QuotedString(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Implies,
    /// `?-`
    QueryMark,
    /// End of input.
    Eof,
}

impl Token {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::LowerIdent(s) => format!("identifier `{s}`"),
            Token::UpperIdent(s) => format!("variable `{s}`"),
            Token::Integer(i) => format!("integer `{i}`"),
            Token::QuotedString(s) => format!("string \"{s}\""),
            Token::LParen => "`(`".to_string(),
            Token::RParen => "`)`".to_string(),
            Token::Comma => "`,`".to_string(),
            Token::Dot => "`.`".to_string(),
            Token::Implies => "`:-`".to_string(),
            Token::QueryMark => "`?-`".to_string(),
            Token::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub position: Position,
}

/// Tokenize the whole input. Returns the token stream terminated by [`Token::Eof`].
pub fn tokenize(input: &str) -> ParseResult<Vec<SpannedToken>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;

    macro_rules! here {
        () => {
            Position { line, column }
        };
    }

    while let Some(&c) = chars.peek() {
        let position = here!();
        match c {
            ' ' | '\t' | '\r' => {
                chars.next();
                column += 1;
            }
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            '%' => {
                // Line comment: skip to end of line.
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    column += 1;
                }
            }
            '(' => {
                chars.next();
                column += 1;
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    position,
                });
            }
            ')' => {
                chars.next();
                column += 1;
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    position,
                });
            }
            ',' => {
                chars.next();
                column += 1;
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    position,
                });
            }
            '.' => {
                chars.next();
                column += 1;
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    position,
                });
            }
            ':' => {
                chars.next();
                column += 1;
                match chars.peek() {
                    Some('-') => {
                        chars.next();
                        column += 1;
                        tokens.push(SpannedToken {
                            token: Token::Implies,
                            position,
                        });
                    }
                    other => {
                        return Err(ParseError::new(
                            position,
                            format!(
                                "expected `:-` but found `:`{}",
                                other
                                    .map(|c| format!(" followed by `{c}`"))
                                    .unwrap_or_default()
                            ),
                        ));
                    }
                }
            }
            '?' => {
                chars.next();
                column += 1;
                match chars.peek() {
                    Some('-') => {
                        chars.next();
                        column += 1;
                        tokens.push(SpannedToken {
                            token: Token::QueryMark,
                            position,
                        });
                    }
                    _ => {
                        return Err(ParseError::new(position, "expected `?-`"));
                    }
                }
            }
            '"' => {
                chars.next();
                column += 1;
                let mut value = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            column += 1;
                            break;
                        }
                        Some('\n') => {
                            return Err(ParseError::new(position, "unterminated string literal"));
                        }
                        Some(c2) => {
                            column += 1;
                            value.push(c2);
                        }
                        None => {
                            return Err(ParseError::new(position, "unterminated string literal"));
                        }
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::QuotedString(value),
                    position,
                });
            }
            '-' | '0'..='9' => {
                let negative = c == '-';
                if negative {
                    chars.next();
                    column += 1;
                    if !matches!(chars.peek(), Some('0'..='9')) {
                        return Err(ParseError::new(position, "expected digits after `-`"));
                    }
                }
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        digits.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                let value: i64 = digits.parse().map_err(|_| {
                    ParseError::new(position, format!("integer literal `{digits}` out of range"))
                })?;
                tokens.push(SpannedToken {
                    token: Token::Integer(if negative { -value } else { value }),
                    position,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                let first = ident.chars().next().expect("nonempty identifier");
                let token = if first.is_uppercase() || first == '_' {
                    Token::UpperIdent(ident)
                } else {
                    Token::LowerIdent(ident)
                };
                tokens.push(SpannedToken { token, position });
            }
            other => {
                return Err(ParseError::new(
                    position,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }

    tokens.push(SpannedToken {
        token: Token::Eof,
        position: here!(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_a_rule() {
        let toks = kinds("t(X, Y) :- e(X, Y).");
        assert_eq!(
            toks,
            vec![
                Token::LowerIdent("t".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::Comma,
                Token::UpperIdent("Y".into()),
                Token::RParen,
                Token::Implies,
                Token::LowerIdent("e".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::Comma,
                Token::UpperIdent("Y".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_integers_and_negatives() {
        assert_eq!(
            kinds("p(5, -3)."),
            vec![
                Token::LowerIdent("p".into()),
                Token::LParen,
                Token::Integer(5),
                Token::Comma,
                Token::Integer(-3),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_query_mark_and_strings() {
        assert_eq!(
            kinds("?- p(\"hello world\")."),
            vec![
                Token::QueryMark,
                Token::LowerIdent("p".into()),
                Token::LParen,
                Token::QuotedString("hello world".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = kinds("% a comment\n  p(X). % trailing\n");
        assert_eq!(
            toks,
            vec![
                Token::LowerIdent("p".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::RParen,
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn underscore_is_a_variable_token() {
        let toks = kinds("p(_, _Tail).");
        assert!(matches!(toks[2], Token::UpperIdent(ref s) if s == "_"));
        assert!(matches!(toks[4], Token::UpperIdent(ref s) if s == "_Tail"));
    }

    #[test]
    fn reports_positions() {
        let toks = tokenize("p(X).\nq(Y).").unwrap();
        // `q` is the 6th token (index 5) and starts at line 2, column 1.
        let q = &toks[5];
        assert_eq!(q.token, Token::LowerIdent("q".into()));
        assert_eq!(q.position.line, 2);
        assert_eq!(q.position.column, 1);
    }

    #[test]
    fn rejects_bad_characters() {
        let err = tokenize("p(X) & q(Y).").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = tokenize("p(X) : q(Y).").unwrap_err();
        assert!(err.message.contains("expected `:-`"));
        let err = tokenize("\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = tokenize("p(- ).").unwrap_err();
        assert!(err.message.contains("digits"));
    }
}
