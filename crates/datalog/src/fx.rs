//! A small, fast, non-cryptographic hasher (the classic `FxHash` algorithm used by
//! rustc), plus `HashMap`/`HashSet` type aliases built on it.
//!
//! Joins and duplicate elimination hash small fixed-arity tuples of integers billions of
//! times per benchmark run; the default SipHash is measurably slower for these keys.
//! HashDoS resistance is irrelevant here (all inputs are generated workloads), so we
//! trade it away. Implemented internally to keep the dependency set to the approved
//! list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash algorithm (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` hasher: a word-at-a-time multiply-rotate-xor hash.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single value with [`FxHasher`]; convenience for bucketed stores.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
    }

    #[test]
    fn different_inputs_hash_differently() {
        // Not a guarantee in general, but these simple cases must not collide.
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&[1u32, 2u32]), fx_hash_one(&[2u32, 1u32]));
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(set.insert((1, 2)));
        assert!(!set.insert((1, 2)));
        assert!(set.insert((2, 1)));
    }

    #[test]
    fn write_partial_words() {
        // Exercise the remainder path of `write`.
        let a = fx_hash_one(&"abc");
        let b = fx_hash_one(&"abd");
        assert_ne!(a, b);
    }
}
