//! Abstract syntax for Datalog programs: constants, terms, atoms, rules, programs and
//! queries, plus the substitution machinery shared by the evaluator and the program
//! transformations.
//!
//! Following the paper (§2), a *program* is the IDB — the set of rules — while the EDB
//! facts live in a [`crate::storage::Database`]. A *query* is a partially instantiated
//! literal; its answers are the facts unifying with it in the least model of
//! IDB ∪ EDB.

use std::collections::BTreeSet;
use std::fmt;

use crate::fx::FxHashMap;
use crate::symbol::Symbol;

/// A ground data value.
///
/// Workload data uses integers; program constants written in source text (e.g. the `5`
/// in `query(Y) :- t(5, Y).`) may be integers or interned symbolic constants.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A symbolic constant (lowercase identifier or quoted string in source text).
    Sym(Symbol),
}

impl Const {
    /// Convenience constructor for symbolic constants.
    pub fn sym(name: &str) -> Const {
        Const::Sym(Symbol::intern(name))
    }

    /// The integer value, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            Const::Sym(_) => None,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Const {
    fn from(value: i64) -> Self {
        Const::Int(value)
    }
}

impl From<&str> for Const {
    fn from(value: &str) -> Self {
        Const::sym(value)
    }
}

/// A term: either a variable or a constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable, identified by its interned name.
    Var(Symbol),
    /// A ground constant.
    Const(Const),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Convenience constructor for an integer constant term.
    pub fn int(value: i64) -> Term {
        Term::Const(Const::Int(value))
    }

    /// Convenience constructor for a symbolic constant term.
    pub fn sym(name: &str) -> Term {
        Term::Const(Const::sym(name))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Is this term a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The variable symbol, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is ground.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Const> for Term {
    fn from(value: Const) -> Self {
        Term::Const(value)
    }
}

/// A positive atom `p(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate name.
    pub predicate: Symbol,
    /// The argument terms, in order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom from a predicate name and terms.
    pub fn new(predicate: impl Into<Symbol>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// The arity (number of argument positions).
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Is every argument a constant?
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }

    /// Iterate over the variables occurring in this atom (with repetition).
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// The set of distinct variables occurring in this atom, in first-occurrence order.
    pub fn variable_set(&self) -> Vec<Symbol> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self.variables() {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Apply a substitution, replacing mapped variables by their images.
    pub fn apply(&self, subst: &Substitution) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.terms.iter().map(|t| subst.apply_term(*t)).collect(),
        }
    }

    /// Rename the predicate, keeping the argument list.
    pub fn with_predicate(&self, predicate: impl Into<Symbol>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms: self.terms.clone(),
        }
    }

    /// If the atom is ground, return its tuple of constants.
    pub fn as_fact(&self) -> Option<Vec<Const>> {
        self.terms.iter().map(Term::as_const).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.predicate)?;
        if self.terms.is_empty() {
            return Ok(());
        }
        write!(f, "(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A Horn rule `head :- body1, ..., bodyn.`; a rule with an empty body is a fact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (all positive; this engine is positive Datalog).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Construct a rule from a head and body.
    pub fn new(head: Atom, body: Vec<Atom>) -> Rule {
        Rule { head, body }
    }

    /// Construct a fact (a rule with an empty body). The head must be ground to be
    /// evaluable; validation checks this.
    pub fn fact(head: Atom) -> Rule {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Is this rule a fact (empty body)?
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// The set of distinct variables occurring anywhere in the rule, in
    /// first-occurrence order (head first, then body left-to-right).
    pub fn variable_set(&self) -> Vec<Symbol> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self
            .head
            .variables()
            .chain(self.body.iter().flat_map(Atom::variables))
        {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Count of occurrences of each variable across the whole rule.
    pub fn variable_occurrences(&self) -> FxHashMap<Symbol, usize> {
        let mut counts: FxHashMap<Symbol, usize> = FxHashMap::default();
        for v in self
            .head
            .variables()
            .chain(self.body.iter().flat_map(Atom::variables))
        {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// Does `predicate` occur in the body?
    pub fn body_mentions(&self, predicate: Symbol) -> bool {
        self.body.iter().any(|a| a.predicate == predicate)
    }

    /// Apply a substitution to head and body.
    pub fn apply(&self, subst: &Substitution) -> Rule {
        Rule {
            head: self.head.apply(subst),
            body: self.body.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    /// Rename every variable in this rule with fresh names, producing a variant that
    /// shares no variables with any other rule. Used by containment tests and the
    /// uniform-equivalence checker.
    pub fn rename_apart(&self, suffix: &str) -> Rule {
        let mut subst = Substitution::new();
        for v in self.variable_set() {
            let fresh = Symbol::intern(&format!("{}{}", v.as_str(), suffix));
            subst.insert_term(v, Term::Var(fresh));
        }
        self.apply(&subst)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A Datalog program: an ordered list of rules (the IDB).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in source order. Source order is the paper's left-to-right
    /// sideways-information-passing order and is preserved by all transformations.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program { rules: Vec::new() }
    }

    /// Construct from a rule list.
    pub fn from_rules(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Add a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The set of predicates appearing in some rule head — the IDB predicates.
    pub fn idb_predicates(&self) -> BTreeSet<Symbol> {
        self.rules.iter().map(|r| r.head.predicate).collect()
    }

    /// The set of predicates appearing only in rule bodies — the EDB predicates.
    pub fn edb_predicates(&self) -> BTreeSet<Symbol> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.predicate)
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// All predicates mentioned anywhere in the program.
    pub fn all_predicates(&self) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .map(|a| a.predicate)
            .collect()
    }

    /// The rules whose head predicate is `predicate`.
    pub fn rules_for(&self, predicate: Symbol) -> impl Iterator<Item = &Rule> + '_ {
        self.rules
            .iter()
            .filter(move |r| r.head.predicate == predicate)
    }

    /// The arity of `predicate` as used in this program, if it occurs. Returns the
    /// arity of the first occurrence; [`crate::validate`] checks consistency.
    pub fn arity_of(&self, predicate: Symbol) -> Option<usize> {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .find(|a| a.predicate == predicate)
            .map(Atom::arity)
    }

    /// Merge another program's rules into this one (appending, preserving order).
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Program {
            rules: iter.into_iter().collect(),
        }
    }
}

/// A query: a partially instantiated literal. Its answers are the facts of the query
/// predicate that unify with it in the least model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The query literal.
    pub atom: Atom,
}

impl Query {
    /// Construct a query from its literal.
    pub fn new(atom: Atom) -> Query {
        Query { atom }
    }

    /// The positions of the query literal holding constants — the *bound* argument
    /// positions in the paper's terminology.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_const().then_some(i))
            .collect()
    }

    /// The positions of the query literal holding variables — the *free* positions.
    pub fn free_positions(&self) -> Vec<usize> {
        self.atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_var().then_some(i))
            .collect()
    }

    /// The adornment string of this query: `b` for each constant position, `f` for
    /// each variable position (e.g. `t(5, Y)` has adornment `"bf"`).
    pub fn adornment(&self) -> String {
        self.atom
            .terms
            .iter()
            .map(|t| if t.is_const() { 'b' } else { 'f' })
            .collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- {}.", self.atom)
    }
}

/// A mapping from variables to terms, applied simultaneously.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Substitution {
    map: FxHashMap<Symbol, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution {
            map: FxHashMap::default(),
        }
    }

    /// Bind `var` to a constant.
    pub fn insert(&mut self, var: Symbol, value: Const) {
        self.map.insert(var, Term::Const(value));
    }

    /// Bind `var` to an arbitrary term.
    pub fn insert_term(&mut self, var: Symbol, term: Term) {
        self.map.insert(var, term);
    }

    /// Look up the binding of `var`.
    pub fn get(&self, var: Symbol) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Apply to a single term.
    pub fn apply_term(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(&v).copied().unwrap_or(term),
            Term::Const(_) => term,
        }
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Term)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> Program {
        // t(X, Y) :- e(X, Y).  t(X, Y) :- e(X, W), t(W, Y).
        let t = |a, b| Atom::new("t", vec![a, b]);
        let e = |a, b| Atom::new("e", vec![a, b]);
        Program::from_rules(vec![
            Rule::new(
                t(Term::var("X"), Term::var("Y")),
                vec![e(Term::var("X"), Term::var("Y"))],
            ),
            Rule::new(
                t(Term::var("X"), Term::var("Y")),
                vec![
                    e(Term::var("X"), Term::var("W")),
                    t(Term::var("W"), Term::var("Y")),
                ],
            ),
        ])
    }

    #[test]
    fn atom_display_and_arity() {
        let a = Atom::new("t", vec![Term::int(5), Term::var("Y")]);
        assert_eq!(a.arity(), 2);
        assert_eq!(format!("{a}"), "t(5, Y)");
        assert!(!a.is_ground());
        let g = Atom::new("e", vec![Term::int(1), Term::int(2)]);
        assert!(g.is_ground());
        assert_eq!(g.as_fact(), Some(vec![Const::Int(1), Const::Int(2)]));
    }

    #[test]
    fn zero_arity_atom_display() {
        let a = Atom::new("goal", vec![]);
        assert_eq!(format!("{a}"), "goal");
    }

    #[test]
    fn rule_display() {
        let p = tc_program();
        assert_eq!(format!("{}", p.rules[0]), "t(X, Y) :- e(X, Y).");
        assert_eq!(format!("{}", p.rules[1]), "t(X, Y) :- e(X, W), t(W, Y).");
    }

    #[test]
    fn idb_edb_split() {
        let p = tc_program();
        let idb = p.idb_predicates();
        let edb = p.edb_predicates();
        assert!(idb.contains(&Symbol::intern("t")));
        assert!(!idb.contains(&Symbol::intern("e")));
        assert!(edb.contains(&Symbol::intern("e")));
        assert_eq!(p.arity_of(Symbol::intern("t")), Some(2));
        assert_eq!(p.arity_of(Symbol::intern("nonexistent_p")), None);
    }

    #[test]
    fn variable_sets_and_occurrences() {
        let p = tc_program();
        let vars = p.rules[1].variable_set();
        let names: Vec<_> = vars.iter().map(|v| v.as_str()).collect();
        assert_eq!(names, vec!["X", "Y", "W"]);
        let occ = p.rules[1].variable_occurrences();
        assert_eq!(occ[&Symbol::intern("W")], 2);
        assert_eq!(occ[&Symbol::intern("X")], 2);
    }

    #[test]
    fn substitution_application() {
        let mut s = Substitution::new();
        s.insert(Symbol::intern("X"), Const::Int(5));
        let a = Atom::new("t", vec![Term::var("X"), Term::var("Y")]);
        let b = a.apply(&s);
        assert_eq!(format!("{b}"), "t(5, Y)");
        // Unmapped variables are untouched; constants are untouched.
        assert_eq!(s.apply_term(Term::int(3)), Term::int(3));
    }

    #[test]
    fn rename_apart_produces_disjoint_variables() {
        let p = tc_program();
        let r = p.rules[1].rename_apart("_1");
        let orig: BTreeSet<_> = p.rules[1].variable_set().into_iter().collect();
        let renamed: BTreeSet<_> = r.variable_set().into_iter().collect();
        assert!(orig.is_disjoint(&renamed));
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn query_adornment_and_positions() {
        let q = Query::new(Atom::new("t", vec![Term::int(5), Term::var("Y")]));
        assert_eq!(q.adornment(), "bf");
        assert_eq!(q.bound_positions(), vec![0]);
        assert_eq!(q.free_positions(), vec![1]);
        assert_eq!(format!("{q}"), "?- t(5, Y).");
    }

    #[test]
    fn program_display_roundtrips_rule_text() {
        let p = tc_program();
        let text = format!("{p}");
        assert!(text.contains("t(X, Y) :- e(X, Y)."));
        assert!(text.contains("t(X, Y) :- e(X, W), t(W, Y)."));
    }

    #[test]
    fn const_conversions() {
        let c: Const = 42.into();
        assert_eq!(c.as_int(), Some(42));
        let s: Const = "abc".into();
        assert_eq!(s.as_int(), None);
        assert_eq!(format!("{s}"), "abc");
    }
}
