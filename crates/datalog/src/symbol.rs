//! Global string interner and the [`Symbol`] handle type.
//!
//! Predicate names, variable names, and symbolic constants are interned once and
//! referred to by a compact `u32` handle everywhere else, so the hot evaluation paths
//! never touch strings. The interner is global and append-only; interned strings are
//! leaked (`Box::leak`) so that [`Symbol::as_str`] can hand out `&'static str` without
//! holding a lock. The set of *names* in any program is small and bounded (data values
//! are integers, see [`crate::ast::Const`]), so the leak is a deliberate, bounded
//! trade-off for a lock-free read path.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::fx::FxHashMap;

/// A handle to an interned string (predicate name, variable name, or symbolic constant).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: FxHashMap::default(),
            names: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(leaked);
        self.map.insert(leaked, id);
        id
    }
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::new()))
}

impl Symbol {
    /// Intern `name`, returning its stable handle. Interning the same string twice
    /// returns the same handle.
    pub fn intern(name: &str) -> Symbol {
        Symbol(interner().lock().expect("interner poisoned").intern(name))
    }

    /// The interned string for this symbol.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").names[self.0 as usize]
    }

    /// A fresh symbol guaranteed not to collide with any previously interned name.
    ///
    /// Used by program transformations (magic sets, factoring, standard-form
    /// conversion) to mint new predicate and variable names. The name embeds `base`
    /// for readability plus a global counter.
    pub fn fresh(base: &str) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("{base}#{n}");
            let mut guard = interner().lock().expect("interner poisoned");
            if !guard.map.contains_key(candidate.as_str()) {
                return Symbol(guard.intern(&candidate));
            }
        }
    }

    /// The raw interner index. Useful as a dense map key.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(value: &str) -> Self {
        Symbol::intern(value)
    }
}

impl From<String> for Symbol {
    fn from(value: String) -> Self {
        Symbol::intern(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("edge");
        let b = Symbol::intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Symbol::intern("alpha_sym_test");
        let b = Symbol::intern("beta_sym_test");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha_sym_test");
        assert_eq!(b.as_str(), "beta_sym_test");
    }

    #[test]
    fn fresh_symbols_do_not_collide() {
        let base = Symbol::intern("m_t");
        let f1 = Symbol::fresh("m_t");
        let f2 = Symbol::fresh("m_t");
        assert_ne!(f1, f2);
        assert_ne!(f1, base);
        assert!(f1.as_str().starts_with("m_t#"));
    }

    #[test]
    fn display_and_from_impls() {
        let s: Symbol = "gamma_sym_test".into();
        assert_eq!(format!("{s}"), "gamma_sym_test");
        let s2: Symbol = String::from("gamma_sym_test").into();
        assert_eq!(s, s2);
    }

    #[test]
    fn interning_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut syms = Vec::new();
                    for j in 0..100 {
                        syms.push(Symbol::intern(&format!("concurrent_{}", (i + j) % 50)));
                    }
                    syms
                })
            })
            .collect();
        for h in handles {
            for s in h.join().unwrap() {
                assert!(s.as_str().starts_with("concurrent_"));
            }
        }
    }
}
