//! Static-argument reduction (Definitions 5.1–5.2, Lemmas 5.1–5.2).
//!
//! A bound argument position of the recursive predicate is *static* if every body
//! occurrence of the predicate carries the same variable there as the rule head; the
//! query constant can then be substituted throughout and the position dropped,
//! lowering the predicate's arity by one. Reduction can turn a program to which the
//! factoring theorems do not apply (Example 5.1) — or a *pseudo-left-linear* program
//! (Definition 5.3, Example 5.2) — into one to which they do.

use factorlog_datalog::ast::{Atom, Program, Query, Rule, Substitution, Term};
use factorlog_datalog::symbol::Symbol;

use crate::error::{TransformError, TransformResult};

/// The result of reducing a program with respect to its static bound arguments.
#[derive(Clone, Debug)]
pub struct ReducedProgram {
    /// The reduced program (the recursive predicate renamed and its arity lowered).
    pub program: Program,
    /// The reduced query.
    pub query: Query,
    /// The original recursive predicate.
    pub original_predicate: Symbol,
    /// The lower-arity replacement predicate.
    pub reduced_predicate: Symbol,
    /// The argument positions (of the original predicate) that were removed.
    pub removed_positions: Vec<usize>,
}

/// The bound (query-constant) argument positions of `predicate` that are *static*
/// (Definition 5.1): in every rule whose head is `predicate`, every body occurrence of
/// `predicate` carries the head's variable at that position.
pub fn static_bound_positions(program: &Program, query: &Query) -> Vec<usize> {
    let predicate = query.atom.predicate;
    query
        .bound_positions()
        .into_iter()
        .filter(|&pos| {
            program.rules_for(predicate).all(|rule| {
                let Some(Term::Var(head_var)) = rule.head.terms.get(pos).copied() else {
                    // A constant or missing term in the head: not a static variable
                    // position in the sense of Definition 5.1.
                    return false;
                };
                rule.body
                    .iter()
                    .filter(|a| a.predicate == predicate)
                    .all(|a| a.terms.get(pos).copied() == Some(Term::Var(head_var)))
            })
        })
        .collect()
}

/// Reduce the query predicate with respect to all of its static bound argument
/// positions (Definition 5.2 applied to each). Requires a unit program: every rule
/// that mentions the query predicate in its body must also have it as its head.
pub fn reduce(program: &Program, query: &Query) -> TransformResult<ReducedProgram> {
    let positions = static_bound_positions(program, query);
    reduce_positions(program, query, &positions)
}

/// Reduce the query predicate with respect to a chosen subset of its static bound
/// argument positions (Definition 5.2). The positions must all be static; the paper's
/// Example 5.2 reduces only the first argument even though the second is also static.
pub fn reduce_positions(
    program: &Program,
    query: &Query,
    positions: &[usize],
) -> TransformResult<ReducedProgram> {
    let predicate = query.atom.predicate;
    if program.arity_of(predicate).is_none() {
        return Err(TransformError::UnknownQueryPredicate {
            predicate: predicate.as_str().to_string(),
        });
    }
    for rule in &program.rules {
        if rule.head.predicate != predicate && rule.body_mentions(predicate) {
            return Err(TransformError::NotApplicable {
                transformation: "static-argument reduction",
                reason: format!(
                    "rule `{rule}` uses {predicate} in its body but defines a different predicate"
                ),
            });
        }
    }

    let static_positions = static_bound_positions(program, query);
    let removed_positions: Vec<usize> = positions.to_vec();
    if removed_positions.is_empty() {
        return Err(TransformError::NotApplicable {
            transformation: "static-argument reduction",
            reason: "the query predicate has no static bound argument".to_string(),
        });
    }
    if let Some(&bad) = removed_positions
        .iter()
        .find(|p| !static_positions.contains(p))
    {
        return Err(TransformError::BadArgumentSplit {
            reason: format!("argument position {bad} is not a static bound argument"),
        });
    }

    let existing: std::collections::BTreeSet<&'static str> = program
        .all_predicates()
        .into_iter()
        .map(|p| p.as_str())
        .collect();
    let mut name = format!("{}_red", predicate.as_str());
    while existing.contains(name.as_str()) {
        name.push('_');
    }
    let reduced_predicate = Symbol::intern(&name);

    let kept_positions: Vec<usize> = (0..query.atom.arity())
        .filter(|p| !removed_positions.contains(p))
        .collect();
    let project = |atom: &Atom| -> Atom {
        Atom::new(
            reduced_predicate,
            kept_positions.iter().map(|&i| atom.terms[i]).collect(),
        )
    };

    let mut rules = Vec::with_capacity(program.len());
    for rule in &program.rules {
        if rule.head.predicate != predicate {
            rules.push(rule.clone());
            continue;
        }
        // Substitute the query constants for the head variables at the removed
        // positions, then drop those positions from every occurrence of the predicate.
        let mut subst = Substitution::new();
        for &pos in &removed_positions {
            if let (Term::Var(v), Some(c)) =
                (rule.head.terms[pos], query.atom.terms[pos].as_const())
            {
                subst.insert(v, c);
            }
        }
        let substituted = rule.apply(&subst);
        let head = project(&substituted.head);
        let body = substituted
            .body
            .iter()
            .map(|a| {
                if a.predicate == predicate {
                    project(a)
                } else {
                    a.clone()
                }
            })
            .collect();
        rules.push(Rule::new(head, body));
    }

    let reduced_query = Query::new(project(&query.atom));
    Ok(ReducedProgram {
        program: Program::from_rules(rules),
        query: reduced_query,
        original_predicate: predicate,
        reduced_predicate,
        removed_positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::{classify, RuleClass};
    use crate::conditions::analyze;
    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::storage::Database;

    #[test]
    fn example_5_1_reduction_enables_factoring() {
        // p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z). with query p(5, 6, U):
        // the first argument is static; reducing it yields a program whose rules are
        // classified combined/exit and which passes the factorability analysis.
        let src = "p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).\n\
                   p(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();

        // Before reduction the analysis does not apply (the recursive occurrences are
        // neither left- nor right-linear because X is shared).
        let adorned = adorn(&program, &query).unwrap();
        let classified = classify(&adorned).unwrap();
        assert!(classified
            .rules
            .iter()
            .any(|r| matches!(r.class, RuleClass::Other(_))));

        assert_eq!(static_bound_positions(&program, &query), vec![0]);
        let reduced = reduce(&program, &query).unwrap();
        assert_eq!(reduced.removed_positions, vec![0]);
        assert_eq!(reduced.query.atom.arity(), 2);
        let text = format!("{}", reduced.program);
        assert!(text.contains("p_red(Y, Z) :- a(5), p_red(Y, W), d(W, U), p_red(U, Z)."));
        assert!(text.contains("p_red(Y, Z) :- exit(5, Y, Z)."));

        // After reduction the program classifies as combined + exit and is factorable.
        let adorned = adorn(&reduced.program, &reduced.query).unwrap();
        let classified = classify(&adorned).unwrap();
        assert_eq!(classified.rules[0].class, RuleClass::Combined);
        assert_eq!(classified.rules[1].class, RuleClass::Exit);
        let report = analyze(&classified);
        assert!(report.is_factorable());
    }

    #[test]
    fn example_5_2_pseudo_left_linear_reduction() {
        // p(X, Y, Z) :- p(X, Y, W), d(W, X, Z): the left and last conjunctions share X,
        // so the rule is only pseudo-left-linear; reducing the static first argument
        // yields a genuinely left-linear rule (Lemma 5.2).
        let src = "p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).\np(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        // Both bound positions are static; the paper reduces only the first one.
        assert_eq!(static_bound_positions(&program, &query), vec![0, 1]);
        let reduced = reduce_positions(&program, &query, &[0]).unwrap();
        let text = format!("{}", reduced.program);
        assert!(
            text.contains("p_red(Y, Z) :- p_red(Y, W), d(W, 5, Z)."),
            "{text}"
        );

        let adorned = adorn(&reduced.program, &reduced.query).unwrap();
        let classified = classify(&adorned).unwrap();
        assert_eq!(classified.rules[0].class, RuleClass::LeftLinear);
        assert!(classified.is_rlc_stable());
        assert!(analyze(&classified).is_factorable());
    }

    #[test]
    fn reduction_preserves_answers() {
        let src = "p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).\np(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        let reduced = reduce(&program, &query).unwrap();

        let mut edb = Database::new();
        edb.add_fact("exit", &[Const::Int(5), Const::Int(6), Const::Int(10)]);
        edb.add_fact("exit", &[Const::Int(4), Const::Int(6), Const::Int(30)]);
        edb.add_fact("d", &[Const::Int(10), Const::Int(5), Const::Int(11)]);
        edb.add_fact("d", &[Const::Int(11), Const::Int(5), Const::Int(12)]);
        edb.add_fact("d", &[Const::Int(30), Const::Int(4), Const::Int(31)]);

        let original = evaluate_default(&program, &edb).unwrap();
        let red = evaluate_default(&reduced.program, &edb).unwrap();
        // Original answers project the free position; the reduced query exposes the
        // same values.
        assert_eq!(original.answers(&query), red.answers(&reduced.query));
        assert_eq!(
            original.answers(&query),
            vec![
                vec![Const::Int(10)],
                vec![Const::Int(11)],
                vec![Const::Int(12)]
            ]
        );
    }

    #[test]
    fn non_static_positions_are_not_reduced() {
        // The first argument shifts (the body occurrence carries W, not X).
        let src = "p(X, Y) :- e(X, W), p(W, Y).\np(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, Y)").unwrap();
        assert!(static_bound_positions(&program, &query).is_empty());
        assert!(matches!(
            reduce(&program, &query),
            Err(TransformError::NotApplicable { .. })
        ));
    }

    #[test]
    fn free_positions_are_never_static_candidates() {
        let src = "p(X, Y) :- p(X, W), e(W, Y).\np(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        // X is static, but only bound (constant) query positions qualify.
        let query_free = parse_query("p(X, Y)").unwrap();
        assert!(static_bound_positions(&program, &query_free).is_empty());
        let query_bound = parse_query("p(5, Y)").unwrap();
        assert_eq!(static_bound_positions(&program, &query_bound), vec![0]);
    }

    #[test]
    fn reduction_requires_a_unit_program() {
        let src = "q(Y) :- p(5, Y).\np(X, Y) :- p(X, W), e(W, Y).\np(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(7, Y)").unwrap();
        // The rule for q mentions p in its body, so reduction refuses.
        assert!(matches!(
            reduce(&program, &query),
            Err(TransformError::NotApplicable { .. })
        ));
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let program = parse_program("p(X) :- e(X).").unwrap().program;
        let query = parse_query("zzz(5)").unwrap();
        assert!(matches!(
            reduce(&program, &query),
            Err(TransformError::UnknownQueryPredicate { .. })
        ));
    }

    #[test]
    fn reducing_a_non_static_position_is_rejected() {
        let src = "p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).\np(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        // Position 2 is free (a variable in the query), hence not a static bound
        // argument.
        assert!(matches!(
            reduce_positions(&program, &query, &[2]),
            Err(TransformError::BadArgumentSplit { .. })
        ));
    }
}
