//! One-sided recursions (§6.1 of the paper; Naughton 1987).
//!
//! A *simple one-sided* recursion, after expansion, has the form
//!
//! ```text
//! p(Ā, B̄) :- p(Ā, C̄), c(C̄, D̄, B̄).
//! p(Ā, B̄) :- exit(Ā, B̄).
//! ```
//!
//! where `Ā` is a group of *static* positions (same variable in head and body
//! occurrence) and the remaining positions `B̄` are connected to the body occurrence's
//! `C̄` only through non-recursive literals that never touch the static group. Theorem
//! 6.2 states that the Magic program of a *full selection* (a query binding all of `Ā`
//! or all of `B̄`) on such a recursion is factorable: binding `Ā` makes the rule
//! left-linear, binding `B̄` makes it right-linear, and either way the program is
//! selection-pushing. This module detects the (expanded) simple one-sided shape — the
//! argument/variable-graph characterization of Theorem 6.1 reduces to exactly this
//! structural test for expanded rules — and reports the two full-selection binding
//! patterns.

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Program, Term};
use factorlog_datalog::graph::recursion_info;
use factorlog_datalog::symbol::Symbol;

use crate::error::{TransformError, TransformResult};

/// The result of the one-sidedness analysis.
#[derive(Clone, Debug)]
pub struct OneSidedAnalysis {
    /// The recursive predicate.
    pub predicate: Symbol,
    /// The static argument positions (the `Ā` group).
    pub static_positions: Vec<usize>,
    /// The remaining argument positions (the `B̄` group).
    pub dynamic_positions: Vec<usize>,
    /// Is the recursion simple one-sided (in the expanded form above)?
    pub is_simple_one_sided: bool,
    /// Explanation when it is not.
    pub reason: Option<String>,
}

impl OneSidedAnalysis {
    /// The two *full selection* adornments of Theorem 6.2: binding the whole static
    /// group, or binding the whole dynamic group (each returned as a `b`/`f` string).
    pub fn full_selection_adornments(&self) -> Vec<String> {
        let arity = self.static_positions.len() + self.dynamic_positions.len();
        let build = |bound: &[usize]| -> String {
            (0..arity)
                .map(|i| if bound.contains(&i) { 'b' } else { 'f' })
                .collect()
        };
        vec![
            build(&self.static_positions),
            build(&self.dynamic_positions),
        ]
    }
}

/// Analyse whether the (unit) program defining `predicate` is a simple one-sided
/// recursion in the expanded form of §6.1.
pub fn analyze_one_sided(
    program: &Program,
    predicate: Symbol,
) -> TransformResult<OneSidedAnalysis> {
    let arity =
        program
            .arity_of(predicate)
            .ok_or_else(|| TransformError::UnknownQueryPredicate {
                predicate: predicate.as_str().to_string(),
            })?;

    let info = recursion_info(program);
    let fail = |reason: &str| OneSidedAnalysis {
        predicate,
        static_positions: Vec::new(),
        dynamic_positions: (0..arity).collect(),
        is_simple_one_sided: false,
        reason: Some(reason.to_string()),
    };

    if info.single_recursive_predicate != Some(predicate) {
        return Ok(fail("the program is not a unit recursion on the predicate"));
    }
    let recursive_rules: Vec<_> = info
        .recursive_rules
        .iter()
        .map(|&i| &program.rules[i])
        .collect();
    if recursive_rules.len() != 1 {
        return Ok(fail(
            "a simple one-sided recursion has exactly one recursive rule",
        ));
    }
    let rule = recursive_rules[0];
    let occurrences: Vec<_> = rule
        .body
        .iter()
        .filter(|a| a.predicate == predicate)
        .collect();
    if occurrences.len() != 1 {
        return Ok(fail("the recursive rule must be linear"));
    }
    let occurrence = occurrences[0];

    // Static positions: identical variables in head and body occurrence.
    let mut static_positions = Vec::new();
    let mut dynamic_positions = Vec::new();
    for i in 0..arity {
        match (rule.head.terms.get(i), occurrence.terms.get(i)) {
            (Some(Term::Var(h)), Some(Term::Var(b))) if h == b => static_positions.push(i),
            _ => dynamic_positions.push(i),
        }
    }
    if dynamic_positions.is_empty() {
        return Ok(fail(
            "every argument is static; the recursive rule derives nothing new",
        ));
    }

    let static_vars: BTreeSet<Symbol> = static_positions
        .iter()
        .filter_map(|&i| rule.head.terms[i].as_var())
        .collect();
    // Head-side and body-side dynamic variables must be distinct variable sets (no
    // shifting of a value straight across), and the non-recursive literals must not
    // touch the static group.
    let head_dynamic: BTreeSet<Symbol> = dynamic_positions
        .iter()
        .filter_map(|&i| rule.head.terms[i].as_var())
        .collect();
    let body_dynamic: BTreeSet<Symbol> = dynamic_positions
        .iter()
        .filter_map(|&i| occurrence.terms[i].as_var())
        .collect();
    if !head_dynamic.is_disjoint(&body_dynamic) {
        return Ok(fail(
            "a dynamic-side variable is shared directly between head and body occurrence",
        ));
    }
    let nonrecursive: Vec<&factorlog_datalog::ast::Atom> = rule
        .body
        .iter()
        .filter(|a| a.predicate != predicate)
        .collect();
    for atom in &nonrecursive {
        if atom.variables().any(|v| static_vars.contains(&v)) {
            return Ok(fail(
                "a non-recursive literal mentions a static-group variable",
            ));
        }
    }

    // Theorem 6.1's "only one connected component with a nonzero-weight cycle": the
    // whole changing side must be a single connected blob. The non-recursive literals
    // of the rule must form one connected component that mentions every dynamic-side
    // variable (head and body). Same-generation fails here: `up` and `down` are two
    // disconnected components, one per changing side.
    {
        let mut component_vars: BTreeSet<Symbol> = BTreeSet::new();
        let mut reached = vec![false; nonrecursive.len()];
        if let Some(first) = nonrecursive.first() {
            component_vars.extend(first.variables());
            reached[0] = true;
            loop {
                let mut progressed = false;
                for (i, atom) in nonrecursive.iter().enumerate() {
                    if !reached[i] && atom.variables().any(|v| component_vars.contains(&v)) {
                        reached[i] = true;
                        component_vars.extend(atom.variables());
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        if reached.iter().any(|r| !r) {
            return Ok(fail(
                "the non-recursive literals split into more than one connected component",
            ));
        }
        let all_dynamic: BTreeSet<Symbol> = head_dynamic.union(&body_dynamic).copied().collect();
        if !all_dynamic.iter().all(|v| component_vars.contains(v)) {
            return Ok(fail(
                "a dynamic-side variable is not connected to the non-recursive literals",
            ));
        }
    }

    Ok(OneSidedAnalysis {
        predicate,
        static_positions,
        dynamic_positions,
        is_simple_one_sided: true,
        reason: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::classify;
    use crate::conditions::analyze;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn one_sided(src: &str, pred: &str) -> OneSidedAnalysis {
        let program = parse_program(src).unwrap().program;
        analyze_one_sided(&program, Symbol::intern(pred)).unwrap()
    }

    const SIMPLE_ONE_SIDED: &str =
        "p(A1, A2, B) :- p(A1, A2, C), c(C, D), d(D, B).\np(A1, A2, B) :- exit(A1, A2, B).";

    #[test]
    fn detects_the_expanded_form() {
        let a = one_sided(SIMPLE_ONE_SIDED, "p");
        assert!(a.is_simple_one_sided, "{:?}", a.reason);
        assert_eq!(a.static_positions, vec![0, 1]);
        assert_eq!(a.dynamic_positions, vec![2]);
        assert_eq!(
            a.full_selection_adornments(),
            vec!["bbf".to_string(), "ffb".to_string()]
        );
    }

    #[test]
    fn theorem_6_2_both_full_selections_are_factorable() {
        // Binding the static group (Ā) or the dynamic group (B̄) must both yield
        // factorable Magic programs (Theorem 6.2, via Theorem 4.1). The left-to-right
        // SIP requires the body to be ordered so the recursive call sees the right
        // bindings: as written for the Ā-selection (left-linear reading), with the
        // non-recursive literals first for the B̄-selection (right-linear reading).
        let analysis = one_sided(SIMPLE_ONE_SIDED, "p");
        assert_eq!(
            analysis.full_selection_adornments(),
            vec!["bbf".to_string(), "ffb".to_string()]
        );

        let cases = [
            (SIMPLE_ONE_SIDED, "p(101, 102, B)"),
            (
                "p(A1, A2, B) :- c(C, D), d(D, B), p(A1, A2, C).\n\
                 p(A1, A2, B) :- exit(A1, A2, B).",
                "p(A1, A2, 103)",
            ),
        ];
        for (src, query_text) in cases {
            let program = parse_program(src).unwrap().program;
            let query = parse_query(query_text).unwrap();
            let adorned = adorn(&program, &query).unwrap();
            let classification = classify(&adorned).unwrap();
            let report = analyze(&classification);
            assert!(
                report.is_factorable(),
                "full selection {query_text} must be factorable: {report}"
            );
        }
    }

    #[test]
    fn transitive_closure_is_one_sided() {
        let a = one_sided("t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).", "t");
        assert!(a.is_simple_one_sided);
        assert_eq!(a.static_positions, vec![0]);
        assert_eq!(a.dynamic_positions, vec![1]);
    }

    #[test]
    fn same_generation_is_not_one_sided() {
        let a = one_sided(
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\nsg(X, Y) :- flat(X, Y).",
            "sg",
        );
        assert!(!a.is_simple_one_sided);
        assert!(a.reason.is_some());
    }

    #[test]
    fn shifting_variable_breaks_one_sidedness() {
        // The dynamic value B moves straight from the body occurrence to the head.
        let a = one_sided("p(A, B) :- p(A, B), c(B).\np(A, B) :- exit(A, B).", "p");
        assert!(!a.is_simple_one_sided);
    }

    #[test]
    fn static_variable_in_edb_literal_breaks_the_form() {
        // c mentions the static variable A, which is the pseudo-left-linear situation
        // (Example 5.2) needing reduction, not plain one-sidedness.
        let a = one_sided(
            "p(A, B) :- p(A, C), c(C, A, B).\np(A, B) :- exit(A, B).",
            "p",
        );
        assert!(!a.is_simple_one_sided);
        assert!(a.reason.as_ref().unwrap().contains("static-group"));
    }

    #[test]
    fn nonlinear_rule_is_rejected() {
        let a = one_sided(
            "p(A, B) :- p(A, C), p(A, D), c(C, D, B).\np(A, B) :- exit(A, B).",
            "p",
        );
        assert!(!a.is_simple_one_sided);
    }

    #[test]
    fn two_recursive_rules_are_rejected() {
        let a = one_sided(
            "p(A, B) :- p(A, C), c(C, B).\np(A, B) :- p(A, C), d(C, B).\np(A, B) :- exit(A, B).",
            "p",
        );
        assert!(!a.is_simple_one_sided);
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let program = parse_program("p(X) :- e(X).").unwrap().program;
        assert!(analyze_one_sided(&program, Symbol::intern("nope")).is_err());
    }

    #[test]
    fn all_static_rule_is_rejected() {
        let a = one_sided("p(A) :- p(A), c(A).\np(A) :- exit(A).", "p");
        assert!(!a.is_simple_one_sided);
    }
}
