//! Standard form (§4.1): for the factorability analysis, every argument of a `p^a`
//! literal must be a distinct variable.
//!
//! A literal such as `p^a(X, X, 5, Y)` is replaced by `p^a(X, U, V, Y)` together with
//! `equal(U, X)` and `equal(V, 5)` in the rule body. As the paper emphasizes, the
//! translation is purely syntactic and used only at analysis time — the program that is
//! evaluated need not be in standard form. `equal` is conceptually an infinite EDB
//! relation; the conjunctive-query machinery eliminates it by substitution
//! ([`factorlog_datalog::cq::ConjunctiveQuery::normalize_equalities`]).

use factorlog_datalog::ast::{Atom, Program, Rule, Term};
use factorlog_datalog::cq::equal_symbol;
use factorlog_datalog::symbol::Symbol;

/// Is `rule` in standard form with respect to `predicate`? (Every argument of every
/// `predicate` literal is a variable and no variable repeats within one such literal.)
pub fn is_rule_standard(rule: &Rule, predicate: Symbol) -> bool {
    std::iter::once(&rule.head)
        .chain(rule.body.iter())
        .filter(|a| a.predicate == predicate)
        .all(is_atom_standard)
}

/// Is every `predicate` literal of the program in standard form?
pub fn is_program_standard(program: &Program, predicate: Symbol) -> bool {
    program.rules.iter().all(|r| is_rule_standard(r, predicate))
}

fn is_atom_standard(atom: &Atom) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    atom.terms.iter().all(|t| match t {
        Term::Const(_) => false,
        Term::Var(v) => seen.insert(*v),
    })
}

/// Convert one rule to standard form with respect to `predicate`, introducing fresh
/// variables and `equal/2` atoms as needed. Fresh variables are named `_sfN` and do
/// not clash with the rule's variables.
pub fn rule_to_standard_form(rule: &Rule, predicate: Symbol) -> Rule {
    let mut counter = 0usize;
    let existing: std::collections::BTreeSet<Symbol> = rule.variable_set().into_iter().collect();
    let mut fresh = || loop {
        counter += 1;
        let v = Symbol::intern(&format!("_sf{counter}"));
        if !existing.contains(&v) {
            return v;
        }
    };

    let mut extra: Vec<Atom> = Vec::new();
    let mut fix_atom = |atom: &Atom, extra: &mut Vec<Atom>| -> Atom {
        if atom.predicate != predicate || is_atom_standard(atom) {
            return atom.clone();
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                Term::Var(v) if seen.insert(*v) => terms.push(*t),
                _ => {
                    let v = fresh();
                    seen.insert(v);
                    terms.push(Term::Var(v));
                    extra.push(Atom::new(equal_symbol(), vec![Term::Var(v), *t]));
                }
            }
        }
        Atom::new(atom.predicate, terms)
    };

    let head = fix_atom(&rule.head, &mut extra);
    let mut body: Vec<Atom> = rule.body.iter().map(|a| fix_atom(a, &mut extra)).collect();
    body.extend(extra);
    Rule::new(head, body)
}

/// Convert every rule of the program to standard form with respect to `predicate`.
pub fn to_standard_form(program: &Program, predicate: Symbol) -> Program {
    Program::from_rules(
        program
            .rules
            .iter()
            .map(|r| rule_to_standard_form(r, predicate))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::{parse_program, parse_rule};

    #[test]
    fn detects_standard_rules() {
        let p = Symbol::intern("p");
        let r = parse_rule("p(X, Y) :- e(X, W), p(W, Y).").unwrap();
        assert!(is_rule_standard(&r, p));
        let r = parse_rule("p(X, X) :- e(X, X).").unwrap();
        assert!(!is_rule_standard(&r, p), "repeated variable in a p literal");
        let r = parse_rule("p(X, 5) :- e(X, Y).").unwrap();
        assert!(!is_rule_standard(&r, p), "constant in a p literal");
        // Constants in non-p literals are fine.
        let r = parse_rule("p(X, Y) :- e(X, 5), p(5, Y).").unwrap();
        assert!(!is_rule_standard(&r, p));
        let r = parse_rule("q(X, 5) :- e(X, 5).").unwrap();
        assert!(is_rule_standard(&r, p), "only p literals are constrained");
    }

    #[test]
    fn converts_constants_to_equalities() {
        let p = Symbol::intern("p");
        let r = parse_rule("p(X, 5) :- e(X, Y).").unwrap();
        let s = rule_to_standard_form(&r, p);
        assert!(is_rule_standard(&s, p));
        let text = format!("{s}");
        assert!(
            text.starts_with("p(X, _sf1) :- e(X, Y), equal(_sf1, 5)."),
            "{text}"
        );
    }

    #[test]
    fn converts_repeated_variables() {
        let p = Symbol::intern("p");
        let r = parse_rule("p(X, X, Z) :- e(X, Z).").unwrap();
        let s = rule_to_standard_form(&r, p);
        assert!(is_rule_standard(&s, p));
        let text = format!("{s}");
        assert!(text.contains("equal(_sf1, X)"), "{text}");
    }

    #[test]
    fn body_literals_are_converted_too() {
        let p = Symbol::intern("p");
        let r = parse_rule("q(Y) :- p(5, Y).").unwrap();
        let s = rule_to_standard_form(&r, p);
        assert!(is_rule_standard(&s, p));
        assert!(format!("{s}").contains("equal(_sf1, 5)"));
    }

    #[test]
    fn standard_rules_are_untouched() {
        let p = Symbol::intern("p");
        let r = parse_rule("p(X, Y) :- e(X, W), p(W, Y).").unwrap();
        assert_eq!(rule_to_standard_form(&r, p), r);
    }

    #[test]
    fn fresh_variables_avoid_existing_names() {
        let p = Symbol::intern("p");
        let r = parse_rule("p(X, 5) :- e(X, _sf1).").unwrap();
        let s = rule_to_standard_form(&r, p);
        // The generated variable must not collide with the existing _sf1.
        assert!(format!("{s}").contains("equal(_sf2, 5)"));
    }

    #[test]
    fn whole_program_conversion() {
        let program = parse_program("p(X, X) :- e(X).\np(X, Y) :- p(X, W), f(W, Y).")
            .unwrap()
            .program;
        let p = Symbol::intern("p");
        assert!(!is_program_standard(&program, p));
        let converted = to_standard_form(&program, p);
        assert!(is_program_standard(&converted, p));
        assert_eq!(converted.len(), 2);
    }
}
