//! The end-to-end optimizer: *Magic Sets followed by factoring* (the paper's two-step
//! approach, §4.2), with static-argument reduction as a pre-pass and the §5
//! simplifications as a post-pass.
//!
//! ```text
//!   original program + query
//!        │  (optional) static-argument reduction          §5, Lemmas 5.1–5.2
//!        ▼
//!     adornment                                           §2.1/§4.1
//!        ▼
//!     Magic Sets                                          §2.1  (Fig. 1)
//!        ▼
//!     classification + factorability analysis             §4    (Thms 4.1–4.3)
//!        ▼
//!     factoring (when a sufficient condition holds)       §3    (Fig. 2)
//!        ▼
//!     §5 optimizations                                     §5    (Example 5.3)
//! ```
//!
//! When the factorability analysis finds no applicable condition the pipeline falls
//! back to the (optimized) Magic program, which is always sound.

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Atom, Const, Program, Query, Rule};
use factorlog_datalog::eval::{
    seminaive_evaluate, seminaive_evaluate_owned, CompiledProgram, EvalError, EvalOptions,
    EvalResult,
};
use factorlog_datalog::fx::FxHashMap;
use factorlog_datalog::storage::Database;

use crate::adorn::{adorn, AdornedProgram};
use crate::classify::{classify, ProgramClassification};
use crate::conditions::{analyze, FactorabilityReport};
use crate::error::{TransformError, TransformResult};
use crate::factor::{factor_magic, FactoredProgram};
use crate::magic::{magic, MagicProgram};
use crate::optimize::{optimize, FactoringContext, OptimizationTrace, OptimizeOptions};
use crate::reduce::{reduce, ReducedProgram};

/// Options for the end-to-end pipeline.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Attempt the factoring transformation when a sufficient condition holds.
    pub factor: bool,
    /// Factor even when no sufficient condition holds (used by the negative
    /// experiments; the result may be unsound, which is the point of those tests).
    pub force_factoring: bool,
    /// Attempt static-argument reduction before adornment.
    pub try_reduction: bool,
    /// Options for the §5 simplification passes.
    pub optimize: OptimizeOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            factor: true,
            force_factoring: false,
            try_reduction: true,
            optimize: OptimizeOptions::default(),
        }
    }
}

/// Which program the pipeline ended up producing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// The factored Magic program (plus §5 optimizations).
    FactoredMagic,
    /// The Magic program only (factoring did not apply).
    MagicOnly,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::FactoredMagic => write!(f, "magic + factoring"),
            Strategy::MagicOnly => write!(f, "magic only"),
        }
    }
}

/// The output of the pipeline: every intermediate stage plus the final program.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The input program.
    pub original_program: Program,
    /// The input query.
    pub original_query: Query,
    /// The statically reduced program, when reduction applied.
    pub reduced: Option<ReducedProgram>,
    /// The adorned program.
    pub adorned: AdornedProgram,
    /// The Magic program (Fig. 1 for the paper's running example).
    pub magic: MagicProgram,
    /// The rule classification, when the program is a unit program.
    pub classification: Option<ProgramClassification>,
    /// The factorability analysis, when classification succeeded.
    pub factorability: Option<FactorabilityReport>,
    /// The factored Magic program (Fig. 2), when factoring was applied.
    pub factored: Option<FactoredProgram>,
    /// The final program after the §5 simplifications.
    pub program: Program,
    /// The query to ask of the final program.
    pub query: Query,
    /// Which strategy the final program embodies.
    pub strategy: Strategy,
    /// The simplification steps applied.
    pub trace: OptimizationTrace,
    /// Wall time of each transformation pass, in execution order, as
    /// `(pass name, nanoseconds)`. Passes that run twice (the stages re-run
    /// after a successful reduction) appear twice. Always recorded — the
    /// pipeline runs once per prepared-plan miss, so the handful of clock
    /// reads is never on a hot path.
    pub pass_times: Vec<(&'static str, u64)>,
}

impl Optimized {
    /// Evaluate the final program over an EDB.
    pub fn evaluate(&self, edb: &Database) -> Result<EvalResult, EvalError> {
        seminaive_evaluate(&self.program, edb, &EvalOptions::default())
    }

    /// The answers to the original query over `edb`, computed with the final program
    /// (projected onto the query's free positions, sorted).
    pub fn answers(&self, edb: &Database) -> Result<Vec<Vec<Const>>, EvalError> {
        Ok(self.evaluate(edb)?.answers(&self.query))
    }

    /// A human-readable report of every stage (used by the examples and the report
    /// binary).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== original program ==\n{}", self.original_program);
        let _ = writeln!(out, "query: {}\n", self.original_query);
        if let Some(reduced) = &self.reduced {
            let _ = writeln!(
                out,
                "== after static-argument reduction (removed positions {:?}) ==\n{}",
                reduced.removed_positions, reduced.program
            );
        }
        let _ = writeln!(out, "== adorned program ==\n{}", self.adorned.program);
        let _ = writeln!(out, "== magic program ==\n{}", self.magic.program);
        if let Some(classification) = &self.classification {
            let _ = writeln!(out, "== classification ==\n{}", classification.summary());
        }
        if let Some(report) = &self.factorability {
            let _ = writeln!(out, "== factorability ==\n{report}");
        }
        if let Some(factored) = &self.factored {
            let _ = writeln!(out, "== factored magic program ==\n{}", factored.program);
        }
        let _ = writeln!(
            out,
            "== final program ({}) ==\n{}",
            self.strategy, self.program
        );
        let _ = writeln!(out, "final query: {}", self.query);
        if !self.trace.steps.is_empty() {
            let _ = writeln!(out, "\n== simplifications applied ==");
            for step in &self.trace.steps {
                let _ = writeln!(out, "  - {step}");
            }
        }
        out
    }
}

impl Optimized {
    /// Compile the final program into a reusable [`PreparedPlan`] — the plan-reuse API
    /// behind the engine's prepared-query cache.
    ///
    /// The ground seed facts the Magic transformation plants in the program (e.g.
    /// `m_t_bf(5).`) are stripped out of the compiled rule set and kept as data: at
    /// execution time they are injected into the evaluation database instead, where
    /// the semi-naive round 0 (a full pass) picks them up. This makes the compiled
    /// rules constant-free for most programs, so the same plan can be
    /// [rebound](PreparedPlan::rebind) to a query with the same adornment but
    /// different constants without re-running the pipeline.
    pub fn prepare(&self, options: &EvalOptions) -> Result<PreparedPlan, EvalError> {
        let mut rules: Vec<Rule> = Vec::new();
        let mut seeds: Vec<Atom> = Vec::new();
        for rule in &self.program.rules {
            if rule.is_fact() && rule.head.is_ground() {
                seeds.push(rule.head.clone());
            } else {
                rules.push(rule.clone());
            }
        }
        let seedless = Program::from_rules(rules);
        let compiled = CompiledProgram::compile(&seedless, options)?;
        let bound_consts: Vec<Const> = self
            .original_query
            .atom
            .terms
            .iter()
            .filter_map(|t| t.as_const())
            .collect();
        Ok(PreparedPlan {
            seeds,
            query: self.query.clone(),
            compiled,
            bound_consts,
        })
    }
}

/// A compiled, replayable query plan: the output of the optimization pipeline with its
/// rules compiled once and its magic seed facts held as injectable data.
#[derive(Clone, Debug)]
pub struct PreparedPlan {
    /// Ground seed facts stripped from the optimized program, injected at evaluation.
    seeds: Vec<Atom>,
    /// The query to ask of the final program.
    query: Query,
    /// The compiled seedless program.
    compiled: CompiledProgram,
    /// The constants of the original query's bound positions, in position order.
    bound_consts: Vec<Const>,
}

impl PreparedPlan {
    /// The query the plan answers (in the optimized program's vocabulary).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The compiled seedless program.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The seed facts injected at evaluation time.
    pub fn seeds(&self) -> &[Atom] {
        &self.seeds
    }

    /// The original query's bound constants, in position order.
    pub fn bound_consts(&self) -> &[Const] {
        &self.bound_consts
    }

    /// Evaluate the plan over `edb`: inject the seeds, replay the compiled rules.
    pub fn evaluate(&self, edb: &Database, options: &EvalOptions) -> Result<EvalResult, EvalError> {
        let mut db = edb.clone();
        for seed in &self.seeds {
            db.add_atom(seed);
        }
        seminaive_evaluate_owned(&self.compiled, db, options)
    }

    /// The answers to the plan's query over `edb` (projected onto the original
    /// query's free positions, sorted — same contract as [`Optimized::answers`]).
    pub fn answers(
        &self,
        edb: &Database,
        options: &EvalOptions,
    ) -> Result<Vec<Vec<Const>>, EvalError> {
        Ok(self.evaluate(edb, options)?.answers(&self.query))
    }

    /// Rebind the plan to a query with the same predicate and adornment but different
    /// bound constants, reusing the compiled rules verbatim.
    ///
    /// This is sound only when the constants live purely in the seeds and the query —
    /// i.e. the pipeline did not specialize any *rule* on them (and could not have
    /// specialized differently on the new ones). The guard is conservative:
    ///
    /// * old and new constants must be in bijection (consistent duplicates, injective),
    /// * neither set may appear anywhere in the compiled rules,
    /// * every seed constant must be covered by the rebinding map.
    ///
    /// Returns `None` when the guard fails; callers fall back to re-running the
    /// pipeline.
    pub fn rebind(&self, new_bound: &[Const]) -> Option<PreparedPlan> {
        if new_bound.len() != self.bound_consts.len() {
            return None;
        }
        if new_bound == self.bound_consts.as_slice() {
            return Some(self.clone());
        }
        let mut forward: FxHashMap<Const, Const> = FxHashMap::default();
        let mut backward: FxHashMap<Const, Const> = FxHashMap::default();
        for (&old, &new) in self.bound_consts.iter().zip(new_bound) {
            if *forward.entry(old).or_insert(new) != new {
                return None; // inconsistent duplicate pattern
            }
            if *backward.entry(new).or_insert(old) != old {
                return None; // not injective
            }
        }
        let rule_consts = self.rule_constants();
        if forward.keys().any(|c| rule_consts.contains(c))
            || new_bound.iter().any(|c| rule_consts.contains(c))
        {
            return None; // a rule mentions one of the constants: possibly specialized
        }
        let remap_atom = |atom: &Atom| -> Option<Atom> {
            let terms = atom
                .terms
                .iter()
                .map(|t| match t.as_const() {
                    None => Some(*t),
                    Some(c) => forward.get(&c).copied().map(Into::into),
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Atom::new(atom.predicate, terms))
        };
        let seeds = self
            .seeds
            .iter()
            .map(remap_atom)
            .collect::<Option<Vec<_>>>()?;
        let query = Query::new(remap_atom(&self.query.atom)?);
        Some(PreparedPlan {
            seeds,
            query,
            compiled: self.compiled.clone(),
            bound_consts: new_bound.to_vec(),
        })
    }

    /// Every constant mentioned by the compiled (seedless) rules.
    fn rule_constants(&self) -> BTreeSet<Const> {
        self.compiled
            .program()
            .rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .flat_map(|a| a.terms.iter().filter_map(|t| t.as_const()))
            .collect()
    }
}

/// The transformation stages run on one (program, query) pair.
struct Stages {
    adorned: AdornedProgram,
    magic: MagicProgram,
    classification: Option<ProgramClassification>,
    factorability: Option<FactorabilityReport>,
    factored: Option<FactoredProgram>,
}

/// Run `f`, appending its wall time to `passes` under `name`.
fn timed<T>(passes: &mut Vec<(&'static str, u64)>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    passes.push((name, start.elapsed().as_nanos() as u64));
    out
}

fn run_stages(
    program: &Program,
    query: &Query,
    options: &PipelineOptions,
    passes: &mut Vec<(&'static str, u64)>,
) -> TransformResult<Stages> {
    let adorned = timed(passes, "adorn", || adorn(program, query))?;
    let magic_program = timed(passes, "magic", || magic(&adorned))?;
    let classification = match timed(passes, "classify", || classify(&adorned)) {
        Ok(c) => Some(c),
        Err(TransformError::NotUnitProgram { .. }) => None,
        Err(other) => return Err(other),
    };
    let factorability = timed(passes, "factorability", || {
        classification.as_ref().map(analyze)
    });
    let should_factor = options.factor
        && (options.force_factoring
            || factorability
                .as_ref()
                .map(FactorabilityReport::is_factorable)
                .unwrap_or(false));
    let factored = if should_factor {
        match timed(passes, "factor", || factor_magic(&adorned, &magic_program)) {
            Ok(f) => Some(f),
            Err(TransformError::NotApplicable { .. }) => None,
            Err(other) => return Err(other),
        }
    } else {
        None
    };
    Ok(Stages {
        adorned,
        magic: magic_program,
        classification,
        factorability,
        factored,
    })
}

/// Run the full pipeline on a program and query.
///
/// Static-argument reduction is attempted only when the program does not factor as
/// written (the paper uses reduction to bring programs like Examples 5.1/5.2 into the
/// scope of the factoring theorems); if the reduced program factors — or even if it
/// does not, since reduction alone already lowers the recursive arity — the pipeline
/// continues from the reduced program.
pub fn optimize_query(
    program: &Program,
    query: &Query,
    options: &PipelineOptions,
) -> TransformResult<Optimized> {
    let mut pass_times: Vec<(&'static str, u64)> = Vec::new();
    let mut reduced: Option<ReducedProgram> = None;
    let mut stages = run_stages(program, query, options, &mut pass_times)?;

    if stages.factored.is_none() && options.try_reduction {
        let reduction = match timed(&mut pass_times, "reduce", || reduce(program, query)) {
            Ok(r) => Some(r),
            Err(TransformError::NotApplicable { .. })
            | Err(TransformError::UnknownQueryPredicate { .. }) => None,
            Err(other) => return Err(other),
        };
        if let Some(r) = reduction {
            stages = run_stages(&r.program, &r.query, options, &mut pass_times)?;
            reduced = Some(r);
        }
    }

    let Stages {
        adorned,
        magic: magic_program,
        classification,
        factorability,
        factored,
    } = stages;

    let (final_program, final_query, strategy, trace) = match &factored {
        Some(f) => {
            let ctx = FactoringContext::from_factored(f);
            let (optimized, trace) = timed(&mut pass_times, "optimize", || {
                optimize(&f.program, &f.query, Some(&ctx), &options.optimize)
            });
            (optimized, f.query.clone(), Strategy::FactoredMagic, trace)
        }
        None => {
            let (optimized, trace) = timed(&mut pass_times, "optimize", || {
                optimize(
                    &magic_program.program,
                    &adorned.query,
                    None,
                    &options.optimize,
                )
            });
            (optimized, adorned.query.clone(), Strategy::MagicOnly, trace)
        }
    };

    Ok(Optimized {
        original_program: program.clone(),
        original_query: query.clone(),
        reduced,
        adorned,
        magic: magic_program,
        classification,
        factorability,
        factored,
        program: final_program,
        query: final_query,
        strategy,
        trace,
        pass_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::{parse_program, parse_query};

    const THREE_RULE_TC: &str = "t(X, Y) :- t(X, W), t(W, Y).\n\
                                 t(X, Y) :- e(X, W), t(W, Y).\n\
                                 t(X, Y) :- t(X, W), e(W, Y).\n\
                                 t(X, Y) :- e(X, Y).";

    fn chain_edb(n: i64, start: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.add_fact("e", &[Const::Int(start + i), Const::Int(start + i + 1)]);
        }
        db
    }

    #[test]
    fn end_to_end_three_rule_transitive_closure() {
        // Example 1.1: the pipeline must produce the unary program of the introduction
        // and compute the correct answers with it.
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert_eq!(out.strategy, Strategy::FactoredMagic);
        assert!(out.factorability.as_ref().unwrap().is_factorable());
        assert_eq!(out.program.len(), 3, "{}", out.program);

        let edb = chain_edb(10, 5);
        let expected = factorlog_datalog::eval::evaluate_default(&program, &edb)
            .unwrap()
            .answers(&query);
        assert_eq!(out.answers(&edb).unwrap(), expected);
        assert_eq!(expected.len(), 10);

        let report = out.report();
        assert!(report.contains("magic program"));
        assert!(report.contains("factored magic program"));
        assert!(report.contains("selection-pushing"));
    }

    #[test]
    fn non_factorable_program_falls_back_to_magic() {
        let program =
            parse_program("sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).")
                .unwrap()
                .program;
        let query = parse_query("sg(1, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert_eq!(out.strategy, Strategy::MagicOnly);
        assert!(out.factored.is_none());
        assert!(!out.factorability.as_ref().unwrap().is_factorable());

        let mut edb = Database::new();
        edb.add_fact("up", &[Const::Int(1), Const::Int(10)]);
        edb.add_fact("flat", &[Const::Int(10), Const::Int(20)]);
        edb.add_fact("down", &[Const::Int(20), Const::Int(2)]);
        let expected = factorlog_datalog::eval::evaluate_default(&program, &edb)
            .unwrap()
            .answers(&query);
        assert_eq!(out.answers(&edb).unwrap(), expected);
        assert_eq!(expected, vec![vec![Const::Int(2)]]);
    }

    #[test]
    fn reduction_pre_pass_enables_factoring() {
        // Example 5.1: without reduction the program is not even RLC-stable; the
        // pipeline reduces the static argument and then factors.
        let src = "p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).\n\
                   p(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert!(out.reduced.is_some());
        assert_eq!(out.strategy, Strategy::FactoredMagic);

        let mut edb = Database::new();
        edb.add_fact("a", &[Const::Int(5)]);
        edb.add_fact("exit", &[Const::Int(5), Const::Int(6), Const::Int(1)]);
        edb.add_fact("exit", &[Const::Int(5), Const::Int(8), Const::Int(2)]);
        edb.add_fact("d", &[Const::Int(1), Const::Int(8)]);
        edb.add_fact("d", &[Const::Int(2), Const::Int(6)]);
        let expected = factorlog_datalog::eval::evaluate_default(&program, &edb)
            .unwrap()
            .answers(&query);
        assert_eq!(out.answers(&edb).unwrap(), expected);
    }

    #[test]
    fn reduction_can_be_disabled() {
        let src = "p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).\n\
                   p(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        let options = PipelineOptions {
            try_reduction: false,
            ..PipelineOptions::default()
        };
        let out = optimize_query(&program, &query, &options).unwrap();
        assert!(out.reduced.is_none());
        assert_eq!(out.strategy, Strategy::MagicOnly);
    }

    #[test]
    fn factoring_can_be_disabled() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let options = PipelineOptions {
            factor: false,
            ..PipelineOptions::default()
        };
        let out = optimize_query(&program, &query, &options).unwrap();
        assert_eq!(out.strategy, Strategy::MagicOnly);
        // The magic-only fallback still answers correctly.
        let edb = chain_edb(5, 5);
        assert_eq!(out.answers(&edb).unwrap().len(), 5);
    }

    #[test]
    fn forced_factoring_of_a_non_factorable_program_changes_answers() {
        // Forcing the factoring of Example 4.3's program produces a program that is
        // *not* equivalent — reproducing the paper's negative example end to end.
        let src = "p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
                   p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).\n\
                   p(X, Y) :- f(X, V), p(V, Y), r3(Y).\n\
                   p(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, Y)").unwrap();
        let options = PipelineOptions {
            force_factoring: true,
            ..PipelineOptions::default()
        };
        let out = optimize_query(&program, &query, &options).unwrap();
        assert_eq!(out.strategy, Strategy::FactoredMagic);
        assert!(!out.factorability.as_ref().unwrap().is_factorable());

        // The paper's first EDB instance: 8 is incorrectly derived by the factored
        // program.
        let mut edb = Database::new();
        edb.add_fact("f", &[Const::Int(5), Const::Int(1)]);
        edb.add_fact("e", &[Const::Int(5), Const::Int(6)]);
        edb.add_fact("e", &[Const::Int(1), Const::Int(7)]);
        edb.add_fact("e", &[Const::Int(2), Const::Int(8)]);
        edb.add_fact("l1", &[Const::Int(1)]);
        edb.add_fact("c1", &[Const::Int(6), Const::Int(2)]);
        edb.add_fact("r1", &[Const::Int(7)]);
        edb.add_fact("r1", &[Const::Int(8)]);
        // r3 is needed for answers through the right-linear rule.
        for v in [6, 7, 8] {
            edb.add_fact("r3", &[Const::Int(v)]);
        }
        let correct = factorlog_datalog::eval::evaluate_default(&program, &edb)
            .unwrap()
            .answers(&query);
        let factored_answers = out.answers(&edb).unwrap();
        assert!(
            factored_answers.len() > correct.len(),
            "forced factoring must over-derive here: {factored_answers:?} vs {correct:?}"
        );
        assert!(factored_answers.contains(&vec![Const::Int(8)]));
        assert!(!correct.contains(&vec![Const::Int(8)]));
    }

    #[test]
    fn prepared_plan_replays_the_pipeline_output() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        let plan = out.prepare(&EvalOptions::default()).unwrap();
        assert!(
            !plan.seeds().is_empty(),
            "the magic seed must be stripped into the seed list"
        );
        assert_eq!(plan.bound_consts(), &[Const::Int(5)]);
        let edb = chain_edb(10, 5);
        assert_eq!(
            plan.answers(&edb, &EvalOptions::default()).unwrap(),
            out.answers(&edb).unwrap()
        );
    }

    #[test]
    fn prepared_plan_rebinds_to_new_constants() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        let plan = out.prepare(&EvalOptions::default()).unwrap();

        // Rebind the (5)-plan to constant 20 and compare against a fresh pipeline run.
        let rebound = plan.rebind(&[Const::Int(20)]).expect("rebind applies");
        let edb = chain_edb(30, 0);
        let fresh_query = parse_query("t(20, Y)").unwrap();
        let fresh = optimize_query(&program, &fresh_query, &PipelineOptions::default()).unwrap();
        assert_eq!(
            rebound.answers(&edb, &EvalOptions::default()).unwrap(),
            fresh.answers(&edb).unwrap()
        );
        assert_eq!(
            rebound
                .answers(&edb, &EvalOptions::default())
                .unwrap()
                .len(),
            10
        );

        // Same constants: trivially rebindable.
        assert!(plan.rebind(&[Const::Int(5)]).is_some());
        // Arity mismatch: refused.
        assert!(plan.rebind(&[Const::Int(1), Const::Int(2)]).is_none());
    }

    #[test]
    fn rebind_refuses_constants_mentioned_by_rules() {
        // The rule set mentions 7 (in a body literal, which survives the rewriting);
        // a plan may have been specialized on it.
        let program = parse_program(
            "t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, Y), anchor(7).",
        )
        .unwrap()
        .program;
        let query = parse_query("t(5, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        let plan = out.prepare(&EvalOptions::default()).unwrap();
        assert!(plan.rebind(&[Const::Int(7)]).is_none());
    }

    #[test]
    fn head_constants_in_free_positions_survive_the_pipeline() {
        // Regression for the ROADMAP-flagged adornment report: rules whose head has a
        // constant in a free position of the reachable adornment must flow through
        // adorn -> magic -> (factoring) -> §5 optimization without being dropped, and
        // the final program must compute exactly the answers of direct evaluation —
        // including answers *derivable only through* the constant-headed rule.
        let mut edb = Database::new();
        for (a, b) in [(3i64, 4i64), (4, 5), (5, 7), (7, 3), (7, 8), (8, 4), (9, 7)] {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        for m in [3i64, 4, 7, 9] {
            edb.add_fact("mark", &[Const::Int(m)]);
        }
        let cases = [
            // Single constant-headed exit rule: the program is RLC-stable, so the
            // pipeline factors it (the sharpest version of the regression).
            (
                "t(X, Y) :- e(X, W), t(W, Y).\nt(X, 7) :- mark(X).",
                "t(3, Y)",
            ),
            (
                "t(X, Y) :- t(X, W), e(W, Y).\nt(X, 7) :- mark(X).",
                "t(3, Y)",
            ),
            (
                "t(X, Y) :- t(X, W), t(W, Y).\nt(7, Y) :- mark(Y).",
                "t(7, Y)",
            ),
            // Ground program fact as the exit rule.
            ("t(X, Y) :- e(X, W), t(W, Y).\nt(3, 7).", "t(3, Y)"),
            // Extra constant-headed rule beside a variable exit rule: classification
            // sees two exit rules and the pipeline falls back to Magic-only.
            (
                "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nt(X, 7) :- mark(X).",
                "t(3, Y)",
            ),
            // Mirrored adornment: the constant sits in the free position of `fb`.
            (
                "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), e(W, Y).\nt(7, Y) :- mark(Y).",
                "t(X, 4)",
            ),
        ];
        for (src, query_text) in cases {
            let program = parse_program(src).unwrap().program;
            let query = parse_query(query_text).unwrap();
            let expected = factorlog_datalog::eval::evaluate_default(&program, &edb)
                .unwrap()
                .answers(&query);
            assert!(
                !expected.is_empty(),
                "the workload must exercise the constant-headed rule: {src}"
            );
            let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
            assert_eq!(
                out.answers(&edb).unwrap(),
                expected,
                "strategy {:?} loses answers for {query_text} over:\n{src}\nfinal:\n{}",
                out.strategy,
                out.program
            );
            // And the prepared-plan replay path agrees too.
            let plan = out.prepare(&EvalOptions::default()).unwrap();
            assert_eq!(
                plan.answers(&edb, &EvalOptions::default()).unwrap(),
                expected,
                "prepared plan loses answers for {query_text} over:\n{src}"
            );
        }
    }

    #[test]
    fn pass_times_record_every_stage_in_order() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        let names: Vec<&str> = out.pass_times.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "adorn",
                "magic",
                "classify",
                "factorability",
                "factor",
                "optimize"
            ]
        );

        // A reduced program runs the stages twice; both runs are recorded.
        let src = "p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).\n\
                   p(X, Y, Z) :- exit(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        let out = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert!(out.reduced.is_some());
        let adorns = out.pass_times.iter().filter(|(n, _)| *n == "adorn").count();
        assert_eq!(adorns, 2);
        assert!(out.pass_times.iter().any(|(n, _)| *n == "reduce"));
    }

    #[test]
    fn query_on_edb_predicate_is_rejected_cleanly() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let query = parse_query("zzz(1)").unwrap();
        assert!(optimize_query(&program, &query, &PipelineOptions::default()).is_err());
    }
}
