//! The factoring transformation (§3, Proposition 3.1).
//!
//! Factoring a predicate `p` into `p1` and `p2` over a partition of its argument
//! positions replaces every body occurrence `p(t̄)` by the pair `p1(t̄|1), p2(t̄|2)` and
//! every rule with head `p(t̄)` by two rules with the same body and heads `p1(t̄|1)` and
//! `p2(t̄|2)`. The transformed program computes the same answers *iff* the program has
//! the factoring property with respect to the query — which is undecidable in general
//! (Theorem 3.1) but guaranteed for the Magic programs of selection-pushing, symmetric
//! and answer-propagating programs (Theorems 4.1–4.3, [`crate::conditions`]).
//!
//! [`factor_magic`] applies the transformation the paper's theorems are about: the
//! adorned recursive predicate of a Magic program is split into its bound part `bp(X̄)`
//! and free part `fp(Ȳ)`; the answers to the original selection are then exactly the
//! `fp` facts (Fig. 2 of the paper is this transformation applied to Fig. 1).

use factorlog_datalog::ast::{Atom, Program, Query, Rule};
use factorlog_datalog::symbol::Symbol;

use crate::adorn::AdornedProgram;
use crate::error::{TransformError, TransformResult};
use crate::magic::MagicProgram;

/// The result of factoring a Magic program's recursive predicate into bound and free
/// parts.
#[derive(Clone, Debug)]
pub struct FactoredProgram {
    /// The factored program.
    pub program: Program,
    /// The predicate that was factored (the adorned recursive predicate).
    pub factored_predicate: Symbol,
    /// The predicate holding the bound-argument projection (`bp`).
    pub bound_predicate: Symbol,
    /// The predicate holding the free-argument projection (`fp`) — the answers.
    pub free_predicate: Symbol,
    /// Bound argument positions of the factored predicate.
    pub bound_positions: Vec<usize>,
    /// Free argument positions of the factored predicate.
    pub free_positions: Vec<usize>,
    /// The magic predicate guarding the factored predicate, if any.
    pub magic_predicate: Option<Symbol>,
    /// The query, rewritten onto `fp` (the free positions of the adorned query).
    pub query: Query,
    /// The original (pre-factoring) query on the adorned predicate.
    pub adorned_query: Query,
}

/// Split an atom's terms according to a position list.
fn project(atom: &Atom, positions: &[usize], predicate: Symbol) -> Atom {
    Atom::new(
        predicate,
        positions.iter().map(|&i| atom.terms[i]).collect(),
    )
}

/// Apply Proposition 3.1: factor `predicate` into `name1` over `positions1` and
/// `name2` over `positions2` (which must partition `0..arity` and both be non-empty,
/// i.e. the factoring must be nontrivial).
pub fn factor_predicate(
    program: &Program,
    predicate: Symbol,
    positions1: &[usize],
    positions2: &[usize],
    name1: Symbol,
    name2: Symbol,
) -> TransformResult<Program> {
    let Some(arity) = program.arity_of(predicate) else {
        return Err(TransformError::UnknownQueryPredicate {
            predicate: predicate.as_str().to_string(),
        });
    };
    let mut seen = vec![false; arity];
    for &i in positions1.iter().chain(positions2.iter()) {
        if i >= arity {
            return Err(TransformError::BadArgumentSplit {
                reason: format!("position {i} is out of range for arity {arity}"),
            });
        }
        if seen[i] {
            return Err(TransformError::BadArgumentSplit {
                reason: format!("position {i} appears twice in the split"),
            });
        }
        seen[i] = true;
    }
    if seen.iter().any(|s| !s) {
        return Err(TransformError::BadArgumentSplit {
            reason: "the split does not cover every argument position".to_string(),
        });
    }
    if positions1.is_empty() || positions2.is_empty() {
        return Err(TransformError::BadArgumentSplit {
            reason: "both sides of a nontrivial factoring must be non-empty".to_string(),
        });
    }

    let mut out = Program::new();
    for rule in &program.rules {
        let new_body: Vec<Atom> = rule
            .body
            .iter()
            .flat_map(|atom| {
                if atom.predicate == predicate {
                    vec![
                        project(atom, positions1, name1),
                        project(atom, positions2, name2),
                    ]
                } else {
                    vec![atom.clone()]
                }
            })
            .collect();
        if rule.head.predicate == predicate {
            out.push(Rule::new(
                project(&rule.head, positions1, name1),
                new_body.clone(),
            ));
            out.push(Rule::new(project(&rule.head, positions2, name2), new_body));
        } else {
            out.push(Rule::new(rule.head.clone(), new_body));
        }
    }
    Ok(out)
}

/// Factor the adorned recursive predicate of a Magic program into its bound part `bp`
/// and free part `fp` (the factoring used by Theorems 4.1–4.3). The caller is
/// responsible for having established that the program is factorable (via
/// [`crate::conditions::analyze`] or otherwise); this function performs the rewrite
/// unconditionally.
pub fn factor_magic(
    adorned: &AdornedProgram,
    magic: &MagicProgram,
) -> TransformResult<FactoredProgram> {
    let predicate = adorned.query.atom.predicate;
    let info = adorned
        .info(predicate)
        .ok_or_else(|| TransformError::NotApplicable {
            transformation: "factoring",
            reason: "the query predicate is not an adorned IDB predicate".to_string(),
        })?;
    let bound_positions = info.bound_positions();
    let free_positions = info.free_positions();
    if bound_positions.is_empty() || free_positions.is_empty() {
        return Err(TransformError::NotApplicable {
            transformation: "factoring",
            reason: format!(
                "the adornment {} has no nontrivial bound/free split",
                info.adornment
            ),
        });
    }

    let existing: std::collections::BTreeSet<&'static str> = magic
        .program
        .all_predicates()
        .into_iter()
        .chain(adorned.original_predicates.iter().copied())
        .map(|p| p.as_str())
        .collect();
    let mint = |prefix: &str| {
        let mut name = format!("{}{}", prefix, predicate.as_str());
        while existing.contains(name.as_str()) {
            name.push('_');
        }
        Symbol::intern(&name)
    };
    let bound_predicate = mint("b_");
    let free_predicate = mint("f_");

    let program = factor_predicate(
        &magic.program,
        predicate,
        &bound_positions,
        &free_positions,
        bound_predicate,
        free_predicate,
    )?;

    let query = Query::new(project(
        &adorned.query.atom,
        &free_positions,
        free_predicate,
    ));

    Ok(FactoredProgram {
        program,
        factored_predicate: predicate,
        bound_predicate,
        free_predicate,
        bound_positions,
        free_positions,
        magic_predicate: magic.magic_predicate(predicate),
        query,
        adorned_query: adorned.query.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::magic::magic;
    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::storage::Database;

    const THREE_RULE_TC: &str = "t(X, Y) :- t(X, W), t(W, Y).\n\
                                 t(X, Y) :- e(X, W), t(W, Y).\n\
                                 t(X, Y) :- t(X, W), e(W, Y).\n\
                                 t(X, Y) :- e(X, Y).";

    fn factored_tc() -> FactoredProgram {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        factor_magic(&adorned, &magicp).unwrap()
    }

    #[test]
    fn factoring_splits_heads_and_bodies() {
        // Figure 2 of the paper: the factored version of the Magic program.
        let f = factored_tc();
        let text = format!("{}", f.program);
        assert_eq!(f.bound_predicate.as_str(), "b_t_bf");
        assert_eq!(f.free_predicate.as_str(), "f_t_bf");
        // The seed and magic rules survive unchanged except for t_bf occurrences.
        assert!(text.contains("m_t_bf(5)."));
        assert!(text.contains("m_t_bf(W) :- m_t_bf(X), b_t_bf(X), f_t_bf(W)."));
        // Each guarded rule is duplicated into a b_ head and an f_ head with the same
        // body (the exit rule shown here).
        assert!(text.contains("b_t_bf(X) :- m_t_bf(X), e(X, Y)."));
        assert!(text.contains("f_t_bf(Y) :- m_t_bf(X), e(X, Y)."));
        // The nonlinear rule's body mentions both factors of both occurrences.
        assert!(
            text.contains("f_t_bf(Y) :- m_t_bf(X), b_t_bf(X), f_t_bf(W), b_t_bf(W), f_t_bf(Y).")
        );
        // The query now asks for fp facts.
        assert_eq!(format!("{}", f.query), "?- f_t_bf(Y).");
        assert_eq!(f.magic_predicate.unwrap().as_str(), "m_t_bf");
    }

    #[test]
    fn factored_magic_program_preserves_answers() {
        // Theorem 4.1 instantiated: on a concrete EDB the factored Magic program
        // computes exactly the original answers.
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let f = factored_tc();

        let mut edb = Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 8), (8, 6), (1, 2), (2, 3)] {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let factored = evaluate_default(&f.program, &edb).unwrap();
        let expected: Vec<Vec<Const>> = original.answers(&query);
        let got: Vec<Vec<Const>> = factored.answers(&f.query);
        assert_eq!(expected, got);
        // And the factored program has strictly lower-arity recursive predicates: no
        // binary t_bf relation is materialized at all.
        assert_eq!(factored.database.count("t_bf"), 0);
        assert!(factored.database.count("f_t_bf") > 0);
    }

    #[test]
    fn generic_factoring_validates_the_split() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let t = Symbol::intern("t");
        let b = Symbol::intern("bt_x");
        let f = Symbol::intern("ft_x");
        assert!(factor_predicate(&program, t, &[0], &[1], b, f).is_ok());
        assert!(factor_predicate(&program, t, &[0], &[0], b, f).is_err());
        assert!(factor_predicate(&program, t, &[0], &[2], b, f).is_err());
        assert!(factor_predicate(&program, t, &[0, 1], &[], b, f).is_err());
        assert!(factor_predicate(&program, t, &[0], &[], b, f).is_err());
        assert!(factor_predicate(&program, Symbol::intern("zz"), &[0], &[1], b, f).is_err());
    }

    #[test]
    fn theorem_3_1_counterexample_changes_answers() {
        // The proof of Theorem 3.1: factoring t(X, Y, Z) into t1(X) and t2(Y, Z) is
        // not sound for the program below when a1 and a2 differ, because the recombined
        // relation mixes X values from one rule with (Y, Z) values from the other.
        let src = "t(X, Y, Z) :- a1(X), q1(Y, Z).\nt(X, Y, Z) :- a2(X), q2(Y, Z).";
        let program = parse_program(src).unwrap().program;
        let t = Symbol::intern("t");
        let t1 = Symbol::intern("t1_counter");
        let t2 = Symbol::intern("t2_counter");
        let mut factored = factor_predicate(&program, t, &[0], &[1, 2], t1, t2).unwrap();
        // Proposition 3.1's equivalent formulation adds the recombination rule.
        factored.push(
            factorlog_datalog::parser::parse_rule("t(X, Y, Z) :- t1_counter(X), t2_counter(Y, Z).")
                .unwrap(),
        );

        // EDB from the proof: a2 empty, a1 = {1}, q2 = {(2,3)... } — here q1 holds the
        // two tuples and q2 is empty, so the original program derives t(1,2,3) and
        // t(1,4,5) only.
        let mut edb = Database::new();
        edb.add_fact("a1", &[Const::Int(1)]);
        edb.add_fact("q1", &[Const::Int(2), Const::Int(3)]);
        edb.add_fact("q1", &[Const::Int(4), Const::Int(5)]);
        // Make the *second* rule also fire with a different X so recombination mixes.
        edb.add_fact("a2", &[Const::Int(9)]);
        edb.add_fact("q2", &[Const::Int(7), Const::Int(8)]);

        let query = parse_query("t(X, Y, Z)").unwrap();
        let original = evaluate_default(&program, &edb).unwrap();
        let recombined = evaluate_default(&factored, &edb).unwrap();
        let orig_answers = original.answers(&query);
        let fact_answers = recombined.answers(&query);
        assert_eq!(orig_answers.len(), 3);
        assert!(
            fact_answers.len() > orig_answers.len(),
            "factoring must produce spurious tuples here ({} vs {})",
            fact_answers.len(),
            orig_answers.len()
        );
        // The spurious tuple mixes a1's X with q2's (Y, Z).
        assert!(fact_answers.contains(&vec![Const::Int(1), Const::Int(7), Const::Int(8)]));
    }

    #[test]
    fn all_bound_adornment_cannot_be_factored() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let query = parse_query("t(5, 7)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        assert!(matches!(
            factor_magic(&adorned, &magicp),
            Err(TransformError::NotApplicable { .. })
        ));
    }
}
