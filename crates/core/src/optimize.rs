//! Post-factoring optimizations (§5 of the paper).
//!
//! The factoring transformation alone (Fig. 2) still carries redundant literals and
//! rules; the paper's Propositions 5.1–5.5 plus deletion under uniform equivalence
//! reduce it to the small program actually evaluated (Example 5.3 ends with a unary
//! three-rule program for the transitive-closure query). This module implements those
//! simplifications as passes run to a fixpoint:
//!
//! 1. delete a rule whose head literal appears in its body, and duplicate rules
//!    (Proposition 5.4, first part);
//! 2. delete a `magic` literal when a `bp` literal with identical arguments is present
//!    (Proposition 5.1);
//! 3. delete a `bp` literal whose arguments occur nowhere else when an `fp` literal is
//!    present, and symmetrically (Proposition 5.2, with Proposition 5.5's anonymous
//!    variables detected implicitly);
//! 4. delete a `bp(c̄)` literal carrying exactly the query constants when an `fp`
//!    literal is present (Proposition 5.3);
//! 5. delete rules not reachable from the query predicate (Proposition 5.4, second
//!    part);
//! 6. delete rules that are redundant under uniform equivalence [Sagiv 1988]: a rule
//!    is redundant iff its frozen head is derivable from the remaining program plus its
//!    frozen body, which we decide with the engine's naive evaluator.

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Atom, Const, Program, Query, Rule, Substitution, Term};
use factorlog_datalog::eval::{naive_evaluate, EvalOptions};
use factorlog_datalog::graph::DependencyGraph;
use factorlog_datalog::storage::Database;
use factorlog_datalog::symbol::Symbol;

use crate::factor::FactoredProgram;

/// Information about the bp/fp/magic predicates of a factored Magic program, needed by
/// the factoring-specific literal deletions (Propositions 5.1–5.3).
#[derive(Clone, Debug)]
pub struct FactoringContext {
    /// The magic predicate of the factored predicate.
    pub magic_predicate: Option<Symbol>,
    /// The bound-projection predicate `bp`.
    pub bound_predicate: Symbol,
    /// The free-projection predicate `fp`.
    pub free_predicate: Symbol,
    /// The constants bound by the original query (the seed tuple).
    pub query_constants: Vec<Const>,
}

impl FactoringContext {
    /// Build the context from a factored program.
    pub fn from_factored(factored: &FactoredProgram) -> FactoringContext {
        let query_constants = factored
            .bound_positions
            .iter()
            .filter_map(|&i| factored.adorned_query.atom.terms[i].as_const())
            .collect();
        FactoringContext {
            magic_predicate: factored.magic_predicate,
            bound_predicate: factored.bound_predicate,
            free_predicate: factored.free_predicate,
            query_constants,
        }
    }
}

/// Options controlling the optimizer.
#[derive(Clone, Debug)]
pub struct OptimizeOptions {
    /// Apply deletion under uniform equivalence (pass 6). On by default; it is the
    /// most expensive pass (one small fixpoint evaluation per candidate rule).
    pub uniform_redundancy: bool,
    /// Maximum number of whole-pipeline fixpoint iterations.
    pub max_passes: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            uniform_redundancy: true,
            max_passes: 10,
        }
    }
}

/// A record of the simplification steps applied, for reports and debugging.
#[derive(Clone, Debug, Default)]
pub struct OptimizationTrace {
    /// Human-readable descriptions, in application order.
    pub steps: Vec<String>,
}

impl OptimizationTrace {
    fn record(&mut self, step: String) {
        self.steps.push(step);
    }
}

/// Run the §5 simplifications on `program` with respect to `query`. `ctx` enables the
/// factoring-specific literal deletions; without it only the generic rule deletions
/// (head-in-body, duplicates, unreachable, uniform redundancy) run.
pub fn optimize(
    program: &Program,
    query: &Query,
    ctx: Option<&FactoringContext>,
    options: &OptimizeOptions,
) -> (Program, OptimizationTrace) {
    let mut current = program.clone();
    let mut trace = OptimizationTrace::default();
    for _ in 0..options.max_passes {
        let mut changed = false;
        changed |= delete_head_in_body(&mut current, &mut trace);
        changed |= delete_duplicate_rules(&mut current, &mut trace);
        if let Some(ctx) = ctx {
            changed |= delete_redundant_literals(&mut current, ctx, &mut trace);
        }
        changed |= delete_unreachable(&mut current, query, &mut trace);
        if options.uniform_redundancy {
            changed |= delete_uniformly_redundant(&mut current, &mut trace);
        }
        if !changed {
            break;
        }
    }
    (current, trace)
}

/// Proposition 5.4 (first part): a rule whose head literal also appears in its body can
/// never derive a new fact.
fn delete_head_in_body(program: &mut Program, trace: &mut OptimizationTrace) -> bool {
    let before = program.len();
    let kept: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| {
            let delete = r.body.contains(&r.head);
            if delete {
                trace.record(format!("deleted rule with head in body: {r}"));
            }
            !delete
        })
        .cloned()
        .collect();
    program.rules = kept;
    program.len() != before
}

/// Remove rules that are syntactically identical up to variable renaming.
fn delete_duplicate_rules(program: &mut Program, trace: &mut OptimizationTrace) -> bool {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let before = program.len();
    let kept: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| {
            let key = canonical_rule_key(r);
            let fresh = seen.insert(key);
            if !fresh {
                trace.record(format!("deleted duplicate rule: {r}"));
            }
            fresh
        })
        .cloned()
        .collect();
    program.rules = kept;
    program.len() != before
}

/// A canonical textual form of a rule with variables renamed by first occurrence, so
/// alpha-equivalent rules compare equal.
fn canonical_rule_key(rule: &Rule) -> String {
    let mut subst = Substitution::new();
    for (i, v) in rule.variable_set().into_iter().enumerate() {
        subst.insert_term(v, Term::Var(Symbol::intern(&format!("_cv{i}"))));
    }
    rule.apply(&subst).to_string()
}

/// Propositions 5.1–5.3: literal deletions specific to factored Magic programs.
fn delete_redundant_literals(
    program: &mut Program,
    ctx: &FactoringContext,
    trace: &mut OptimizationTrace,
) -> bool {
    let mut changed = false;
    let query_tuple: Vec<Term> = ctx
        .query_constants
        .iter()
        .map(|&c| Term::Const(c))
        .collect();
    for rule in &mut program.rules {
        loop {
            let mut delete_index: Option<(usize, &'static str)> = None;

            // Proposition 5.1: magic literal with the same arguments as a bp literal.
            if let Some(magic) = ctx.magic_predicate {
                'outer: for (i, lit) in rule.body.iter().enumerate() {
                    if lit.predicate != magic {
                        continue;
                    }
                    for other in &rule.body {
                        if other.predicate == ctx.bound_predicate && other.terms == lit.terms {
                            delete_index = Some((i, "Proposition 5.1"));
                            break 'outer;
                        }
                    }
                }
            }

            // Proposition 5.2 / 5.3: bp literal deletable when an fp literal is present
            // (and vice versa for fp-only-variable literals).
            if delete_index.is_none() {
                let has_fp = rule.body.iter().any(|a| a.predicate == ctx.free_predicate);
                let has_bp = rule.body.iter().any(|a| a.predicate == ctx.bound_predicate);
                let occurrences = rule.variable_occurrences();
                for (i, lit) in rule.body.iter().enumerate() {
                    let all_anonymous = lit.terms.iter().all(
                        |t| matches!(t, Term::Var(v) if occurrences.get(v).copied() == Some(1)),
                    );
                    if lit.predicate == ctx.bound_predicate && has_fp {
                        if all_anonymous {
                            delete_index = Some((i, "Proposition 5.2"));
                            break;
                        }
                        if !query_tuple.is_empty() && lit.terms == query_tuple {
                            delete_index = Some((i, "Proposition 5.3"));
                            break;
                        }
                    }
                    if lit.predicate == ctx.free_predicate && has_bp && all_anonymous {
                        delete_index = Some((i, "Proposition 5.2 (free side)"));
                        break;
                    }
                }
            }

            match delete_index {
                Some((i, reason)) => {
                    let removed = rule.body.remove(i);
                    trace.record(format!("{reason}: deleted literal {removed} from {rule}"));
                    changed = true;
                }
                None => break,
            }
        }
    }
    changed
}

/// Proposition 5.4 (second part): delete rules for predicates not reachable from the
/// query predicate.
fn delete_unreachable(program: &mut Program, query: &Query, trace: &mut OptimizationTrace) -> bool {
    if program.is_empty() {
        return false;
    }
    if !program.all_predicates().contains(&query.atom.predicate) {
        // The query predicate has no rules at all (e.g. an EDB query); reachability
        // would delete everything, so skip the pass.
        return false;
    }
    let graph = DependencyGraph::new(program);
    let reachable = graph.reachable_from(query.atom.predicate);
    let before = program.len();
    let kept: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| {
            let keep = reachable.contains(&r.head.predicate);
            if !keep {
                trace.record(format!("deleted unreachable rule: {r}"));
            }
            keep
        })
        .cloned()
        .collect();
    program.rules = kept;
    program.len() != before
}

/// Freeze a rule: map each variable to a distinct symbolic constant.
fn freeze(rule: &Rule) -> (Atom, Vec<Atom>) {
    let mut subst = Substitution::new();
    for v in rule.variable_set() {
        subst.insert(
            v,
            Const::Sym(Symbol::intern(&format!("$frozen_{}", v.as_str()))),
        );
    }
    (
        rule.head.apply(&subst),
        rule.body.iter().map(|a| a.apply(&subst)).collect(),
    )
}

/// Is `rule` redundant in `program` under uniform equivalence? (`program` must not
/// contain `rule`.) Decided by evaluating `program` over the frozen body of `rule` and
/// checking that the frozen head is derived.
pub fn is_uniformly_redundant(program: &Program, rule: &Rule) -> bool {
    let (frozen_head, frozen_body) = freeze(rule);
    let mut edb = Database::new();
    for atom in &frozen_body {
        edb.add_atom(atom);
    }
    // Make sure the head predicate's relation exists even if nothing derives it.
    edb.ensure_relation(frozen_head.predicate, frozen_head.arity());
    let options = EvalOptions {
        max_iterations: 10_000,
        enable_builtins: false,
        ..EvalOptions::default()
    };
    match naive_evaluate(program, &edb, &options) {
        Ok(result) => result.database.contains_atom(&frozen_head),
        Err(_) => false,
    }
}

/// Pass 6: delete rules redundant under uniform equivalence, scanning in program order.
fn delete_uniformly_redundant(program: &mut Program, trace: &mut OptimizationTrace) -> bool {
    let mut changed = false;
    let mut index = 0;
    while index < program.rules.len() {
        let candidate = program.rules[index].clone();
        if candidate.is_fact() {
            index += 1;
            continue;
        }
        let mut rest = program.clone();
        rest.rules.remove(index);
        if is_uniformly_redundant(&rest, &candidate) {
            trace.record(format!("deleted uniformly redundant rule: {candidate}"));
            program.rules.remove(index);
            changed = true;
        } else {
            index += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::factor::factor_magic;
    use crate::magic::magic;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_program, parse_query, parse_rule};

    const THREE_RULE_TC: &str = "t(X, Y) :- t(X, W), t(W, Y).\n\
                                 t(X, Y) :- e(X, W), t(W, Y).\n\
                                 t(X, Y) :- t(X, W), e(W, Y).\n\
                                 t(X, Y) :- e(X, Y).";

    #[test]
    fn reproduces_the_final_unary_program_of_example_5_3() {
        // Magic (Fig. 1) -> factoring (Fig. 2) -> §5 optimizations must yield the
        // paper's final program:
        //   m_tbf(W) :- ft(W).     m_tbf(5).     ft(Y) :- m_tbf(X), e(X, Y).
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let factored = factor_magic(&adorned, &magicp).unwrap();
        let ctx = FactoringContext::from_factored(&factored);
        let (optimized, trace) = optimize(
            &factored.program,
            &factored.query,
            Some(&ctx),
            &OptimizeOptions::default(),
        );
        let text = format!("{optimized}");
        assert_eq!(optimized.len(), 3, "final program has three rules:\n{text}");
        assert!(text.contains("m_t_bf(5)."));
        assert!(text.contains("m_t_bf(W) :- f_t_bf(W)."));
        assert!(text.contains("f_t_bf(Y) :- m_t_bf(X), e(X, Y)."));
        // The bound projection disappears entirely.
        assert!(!text.contains("b_t_bf"));
        // The trace records the propositions used.
        let steps = trace.steps.join("\n");
        assert!(steps.contains("Proposition 5.1"));
        assert!(steps.contains("Proposition 5.2"));
        assert!(steps.contains("unreachable"));
        assert!(steps.contains("uniformly redundant"));
    }

    #[test]
    fn optimized_program_still_computes_the_answers() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let factored = factor_magic(&adorned, &magicp).unwrap();
        let ctx = FactoringContext::from_factored(&factored);
        let (optimized, _) = optimize(
            &factored.program,
            &factored.query,
            Some(&ctx),
            &OptimizeOptions::default(),
        );
        let mut edb = factorlog_datalog::storage::Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 5), (3, 4)] {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let opt = evaluate_default(&optimized, &edb).unwrap();
        assert_eq!(original.answers(&query), opt.answers(&factored.query));
    }

    #[test]
    fn head_in_body_rules_are_deleted() {
        let mut p = parse_program("p(X) :- p(X), q(X).\np(X) :- q(X).")
            .unwrap()
            .program;
        let mut trace = OptimizationTrace::default();
        assert!(delete_head_in_body(&mut p, &mut trace));
        assert_eq!(p.len(), 1);
        assert!(!delete_head_in_body(&mut p, &mut trace));
    }

    #[test]
    fn duplicate_rules_are_deleted_up_to_renaming() {
        let mut p = parse_program("p(X) :- q(X, Y).\np(A) :- q(A, B).\np(X) :- q(X, X).")
            .unwrap()
            .program;
        let mut trace = OptimizationTrace::default();
        assert!(delete_duplicate_rules(&mut p, &mut trace));
        assert_eq!(
            p.len(),
            2,
            "the alpha-variant is removed, the different rule stays"
        );
    }

    #[test]
    fn unreachable_rules_are_deleted() {
        let mut p =
            parse_program("answer(Y) :- helper(Y).\nhelper(Y) :- e(5, Y).\norphan(Z) :- f(Z).")
                .unwrap()
                .program;
        let query = parse_query("answer(Y)").unwrap();
        let mut trace = OptimizationTrace::default();
        assert!(delete_unreachable(&mut p, &query, &mut trace));
        assert_eq!(p.len(), 2);
        assert!(!format!("{p}").contains("orphan"));
    }

    #[test]
    fn unreachable_pass_skips_edb_queries() {
        let mut p = parse_program("p(X) :- q(X).").unwrap().program;
        let query = parse_query("nonexistent(X)").unwrap();
        let mut trace = OptimizationTrace::default();
        assert!(!delete_unreachable(&mut p, &query, &mut trace));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn uniform_redundancy_detects_transitive_shortcut() {
        // path(X, Z) :- e(X, Y), e(Y, Z) is implied by path(X,Y) :- e(X,Y) plus
        // path(X, Z) :- path(X, Y), e(Y, Z).
        let program = parse_program("path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).")
            .unwrap()
            .program;
        let shortcut = parse_rule("path(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        assert!(is_uniformly_redundant(&program, &shortcut));
        let not_implied = parse_rule("path(X, Z) :- f(X, Z).").unwrap();
        assert!(!is_uniformly_redundant(&program, &not_implied));
    }

    #[test]
    fn optimizing_without_context_keeps_semantics() {
        // Generic optimization of a plain program: only head-in-body, duplicates,
        // unreachable and uniform redundancy apply.
        let program = parse_program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- t(X, Y).\n\
             t(X, Z) :- e(X, Y), e(Y, Z).\n\
             t(X, Z) :- t(X, Y), e(Y, Z).",
        )
        .unwrap()
        .program;
        let query = parse_query("t(1, Y)").unwrap();
        let (optimized, _) = optimize(&program, &query, None, &OptimizeOptions::default());
        assert_eq!(optimized.len(), 2, "{optimized}");
        let mut edb = factorlog_datalog::storage::Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        let a = evaluate_default(&program, &edb).unwrap();
        let b = evaluate_default(&optimized, &edb).unwrap();
        assert_eq!(a.answers(&query), b.answers(&query));
    }

    #[test]
    fn uniform_redundancy_can_be_disabled() {
        let program = parse_program(
            "t(X, Y) :- e(X, Y).\nt(X, Z) :- e(X, Y), e(Y, Z).\nt(X, Z) :- t(X, Y), e(Y, Z).",
        )
        .unwrap()
        .program;
        let query = parse_query("t(1, Y)").unwrap();
        let options = OptimizeOptions {
            uniform_redundancy: false,
            ..OptimizeOptions::default()
        };
        let (optimized, _) = optimize(&program, &query, None, &options);
        assert_eq!(optimized.len(), 3, "nothing should be deleted");
    }
}
