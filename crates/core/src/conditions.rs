//! The factorability conditions: *selection-pushing* (Definition 4.6, Theorem 4.1),
//! *symmetric* (Definition 4.7, Theorem 4.2) and *answer-propagating* (Definition 4.8,
//! Theorem 4.3) programs.
//!
//! For an RLC-stable unit program that satisfies any of these conditions, the Magic
//! program can be factored with respect to the recursive predicate: `p^a(X̄, Ȳ)`
//! splits into `bp(X̄)` and `fp(Ȳ)`. The conditions are containments and equivalences
//! between the conjunctions of Definition 4.5, decided by the Chandra–Merlin test.
//!
//! Testing for these classes is NP-complete in the size of the *rules* (conjunctive
//! query containment), not the database — exactly the trade-off the paper argues is
//! worthwhile (§4.2, closing remarks).

use std::fmt;

use crate::classify::{ProgramClassification, RuleClass};
use crate::conjunctions;

/// A sufficient condition under which the Magic program is factorable.
#[derive(Copy, Clone, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum FactorableClass {
    /// Definition 4.6 / Theorem 4.1.
    SelectionPushing,
    /// Definition 4.7 / Theorem 4.2.
    Symmetric,
    /// Definition 4.8 / Theorem 4.3 (strictly generalizes the symmetric class).
    AnswerPropagating,
}

impl fmt::Display for FactorableClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorableClass::SelectionPushing => write!(f, "selection-pushing"),
            FactorableClass::Symmetric => write!(f, "symmetric"),
            FactorableClass::AnswerPropagating => write!(f, "answer-propagating"),
        }
    }
}

/// The outcome of the factorability analysis.
#[derive(Clone, Debug)]
pub struct FactorabilityReport {
    /// Every class whose conditions hold (possibly several).
    pub classes: Vec<FactorableClass>,
    /// For each class whose conditions fail, the first reason why.
    pub failures: Vec<(FactorableClass, String)>,
    /// Whether the program is RLC-stable at all.
    pub rlc_stable: bool,
}

impl FactorabilityReport {
    /// Does at least one sufficient condition hold?
    pub fn is_factorable(&self) -> bool {
        !self.classes.is_empty()
    }

    /// The reason a particular class failed, if it did.
    pub fn failure_reason(&self, class: FactorableClass) -> Option<&str> {
        self.failures
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, r)| r.as_str())
    }
}

impl fmt::Display for FactorabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.classes.is_empty() {
            writeln!(
                f,
                "not factorable by the sufficient conditions of Theorems 4.1-4.3"
            )?;
        } else {
            let names: Vec<String> = self.classes.iter().map(|c| c.to_string()).collect();
            writeln!(f, "factorable: {}", names.join(", "))?;
        }
        for (class, reason) in &self.failures {
            writeln!(f, "  not {class}: {reason}")?;
        }
        Ok(())
    }
}

/// Run all three condition checks and collect the results.
pub fn analyze(classification: &ProgramClassification) -> FactorabilityReport {
    let mut classes = Vec::new();
    let mut failures = Vec::new();
    for (class, result) in [
        (
            FactorableClass::SelectionPushing,
            is_selection_pushing(classification),
        ),
        (FactorableClass::Symmetric, is_symmetric(classification)),
        (
            FactorableClass::AnswerPropagating,
            is_answer_propagating(classification),
        ),
    ] {
        match result {
            Ok(()) => classes.push(class),
            Err(reason) => failures.push((class, reason)),
        }
    }
    FactorabilityReport {
        classes,
        failures,
        rlc_stable: classification.is_rlc_stable(),
    }
}

fn require_rlc_stable(classification: &ProgramClassification) -> Result<(), String> {
    if classification.is_rlc_stable() {
        return Ok(());
    }
    let bad: Vec<String> = classification
        .rules
        .iter()
        .filter_map(|r| match &r.class {
            RuleClass::Other(reason) => Some(format!("rule {}: {}", r.rule_index, reason)),
            _ => None,
        })
        .collect();
    if !bad.is_empty() {
        return Err(format!("not RLC-stable ({})", bad.join("; ")));
    }
    Err(format!(
        "not RLC-stable (expected exactly one exit rule, found {})",
        classification.exit_rules().count()
    ))
}

/// Definition 4.6: selection-pushing.
pub fn is_selection_pushing(classification: &ProgramClassification) -> Result<(), String> {
    require_rlc_stable(classification)?;
    let exit = classification
        .exit_rules()
        .next()
        .expect("RLC-stable programs have an exit rule");
    let free_exit = conjunctions::free_exit(exit);

    // Condition 1: free-exit ⊆ free for every combined or right-linear rule.
    for rule in classification.recursive_rules() {
        if matches!(rule.class, RuleClass::Combined | RuleClass::RightLinear) {
            let free = conjunctions::free(rule);
            if !free_exit.is_contained_in(&free) {
                return Err(format!(
                    "free-exit is not contained in the free conjunction of rule {}",
                    rule.rule_index
                ));
            }
        }
    }

    // Condition 2: pairwise conditions on the bound side.
    let with_left: Vec<_> = classification
        .recursive_rules()
        .filter(|r| matches!(r.class, RuleClass::Combined | RuleClass::LeftLinear))
        .collect();
    let right_linear: Vec<_> = classification
        .recursive_rules()
        .filter(|r| r.class == RuleClass::RightLinear)
        .collect();
    for (i, r1) in with_left.iter().enumerate() {
        for r2 in &with_left[i + 1..] {
            let b1 = conjunctions::bound(r1);
            let b2 = conjunctions::bound(r2);
            if !b1.equivalent(&b2) {
                return Err(format!(
                    "the left conjunctions of rules {} and {} are not equivalent",
                    r1.rule_index, r2.rule_index
                ));
            }
        }
    }
    for left_rule in &with_left {
        let bound = conjunctions::bound(left_rule);
        for right_rule in &right_linear {
            let bound_first = conjunctions::bound_first(right_rule);
            if !bound_first.is_contained_in(&bound) {
                return Err(format!(
                    "bound-first of rule {} is not contained in the left conjunction of rule {}",
                    right_rule.rule_index, left_rule.rule_index
                ));
            }
        }
    }
    Ok(())
}

/// Definition 4.7: symmetric.
pub fn is_symmetric(classification: &ProgramClassification) -> Result<(), String> {
    require_rlc_stable(classification)?;
    if !classification.all_recursive_rules_are(&RuleClass::Combined) {
        return Err("every recursive rule must be a combined rule".to_string());
    }
    let exit = classification
        .exit_rules()
        .next()
        .expect("RLC-stable programs have an exit rule");
    let free_exit = conjunctions::free_exit(exit);

    let combined: Vec<_> = classification.recursive_rules().collect();
    for rule in &combined {
        let free = conjunctions::free(rule);
        if !free_exit.is_contained_in(&free) {
            return Err(format!(
                "free-exit is not contained in the free conjunction of rule {}",
                rule.rule_index
            ));
        }
    }
    for (i, r1) in combined.iter().enumerate() {
        for r2 in &combined[i + 1..] {
            let m1 = conjunctions::middle(r1);
            let m2 = conjunctions::middle(r2);
            if !m1.equivalent(&m2) {
                return Err(format!(
                    "the middle conjunctions of rules {} and {} are not equivalent",
                    r1.rule_index, r2.rule_index
                ));
            }
        }
    }
    Ok(())
}

/// Definition 4.8: answer-propagating.
pub fn is_answer_propagating(classification: &ProgramClassification) -> Result<(), String> {
    require_rlc_stable(classification)?;
    let exit = classification
        .exit_rules()
        .next()
        .expect("RLC-stable programs have an exit rule");
    let bound_exit = conjunctions::bound_exit(exit);
    let free_exit = conjunctions::free_exit(exit);

    let left_rules: Vec<_> = classification
        .recursive_rules()
        .filter(|r| r.class == RuleClass::LeftLinear)
        .collect();
    let right_rules: Vec<_> = classification
        .recursive_rules()
        .filter(|r| r.class == RuleClass::RightLinear)
        .collect();
    let combined_rules: Vec<_> = classification
        .recursive_rules()
        .filter(|r| r.class == RuleClass::Combined)
        .collect();

    // Per-rule conditions.
    for rule in &left_rules {
        if !bound_exit.is_contained_in(&conjunctions::bound(rule)) {
            return Err(format!(
                "bound-exit is not contained in the bound conjunction of left-linear rule {}",
                rule.rule_index
            ));
        }
    }
    for rule in right_rules.iter().chain(combined_rules.iter()) {
        if !free_exit.is_contained_in(&conjunctions::free(rule)) {
            return Err(format!(
                "free-exit is not contained in the free conjunction of rule {}",
                rule.rule_index
            ));
        }
    }

    // Pairwise conditions.
    for (i, r1) in combined_rules.iter().enumerate() {
        for r2 in &combined_rules[i + 1..] {
            if !conjunctions::middle(r1).equivalent(&conjunctions::middle(r2)) {
                return Err(format!(
                    "the middle conjunctions of combined rules {} and {} are not equivalent",
                    r1.rule_index, r2.rule_index
                ));
            }
        }
    }
    for left in &left_rules {
        for combined in &combined_rules {
            if !conjunctions::bound(left).is_contained_in(&conjunctions::bound(combined)) {
                return Err(format!(
                    "the bound conjunction of left-linear rule {} is not contained in that of combined rule {}",
                    left.rule_index, combined.rule_index
                ));
            }
            if !conjunctions::free_last(left).is_contained_in(&conjunctions::free(combined)) {
                return Err(format!(
                    "free-last of left-linear rule {} is not contained in the free conjunction of combined rule {}",
                    left.rule_index, combined.rule_index
                ));
            }
        }
    }
    for right in &right_rules {
        for combined in &combined_rules {
            if !conjunctions::bound_first(right).is_contained_in(&conjunctions::bound(combined)) {
                return Err(format!(
                    "bound-first of right-linear rule {} is not contained in the bound conjunction of combined rule {}",
                    right.rule_index, combined.rule_index
                ));
            }
        }
        for left in &left_rules {
            if !conjunctions::bound_first(right).is_contained_in(&conjunctions::bound(left)) {
                return Err(format!(
                    "bound-first of right-linear rule {} is not contained in the bound conjunction of left-linear rule {}",
                    right.rule_index, left.rule_index
                ));
            }
            if !conjunctions::free_last(left).is_contained_in(&conjunctions::free(right)) {
                return Err(format!(
                    "free-last of left-linear rule {} is not contained in the free conjunction of right-linear rule {}",
                    left.rule_index, right.rule_index
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::classify;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn report(src: &str, query: &str) -> FactorabilityReport {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        analyze(&classify(&adorn(&program, &query).unwrap()).unwrap())
    }

    const THREE_RULE_TC: &str = "t(X, Y) :- t(X, W), t(W, Y).\n\
                                 t(X, Y) :- e(X, W), t(W, Y).\n\
                                 t(X, Y) :- t(X, W), e(W, Y).\n\
                                 t(X, Y) :- e(X, Y).";

    #[test]
    fn three_rule_tc_is_selection_pushing() {
        // Example 4.2: the Magic program of the three-rule transitive closure factors;
        // the sufficient condition that applies is selection-pushing.
        let r = report(THREE_RULE_TC, "t(5, Y)");
        assert!(r.is_factorable());
        assert!(r.classes.contains(&FactorableClass::SelectionPushing));
        assert!(r.classes.contains(&FactorableClass::AnswerPropagating));
        // Not symmetric: it has non-combined recursive rules.
        assert!(!r.classes.contains(&FactorableClass::Symmetric));
        assert!(r
            .failure_reason(FactorableClass::Symmetric)
            .unwrap()
            .contains("combined"));
        assert!(r.rlc_stable);
        assert!(format!("{r}").contains("factorable"));
    }

    #[test]
    fn single_right_linear_tc_is_selection_pushing() {
        let r = report(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert!(r.classes.contains(&FactorableClass::SelectionPushing));
    }

    #[test]
    fn single_left_linear_tc_is_selection_pushing() {
        let r = report(
            "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert!(r.classes.contains(&FactorableClass::SelectionPushing));
        assert!(r.classes.contains(&FactorableClass::AnswerPropagating));
    }

    #[test]
    fn pmem_program_is_selection_pushing() {
        // Example 4.6 (standard form, list represented by an EDB relation).
        let r = report(
            "pmem(X, L) :- list(X, T, L), p(X).\n\
             pmem(X, L) :- list(H, T, L), pmem(X, T).",
            "pmem(X, 100)",
        );
        assert!(r.classes.contains(&FactorableClass::SelectionPushing));
    }

    #[test]
    fn example_4_3_exact_program_is_not_factorable() {
        // The program of Example 4.3 as written does not satisfy the containment
        // conditions (the paper uses it to show what goes wrong when they fail).
        let r = report(
            "p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
             p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).\n\
             p(X, Y) :- f(X, V), p(V, Y), r3(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        assert!(!r.is_factorable());
        assert!(r
            .failure_reason(FactorableClass::SelectionPushing)
            .is_some());
    }

    #[test]
    fn selection_pushing_variant_of_example_4_3() {
        // Restoring the conditions: a common left conjunction, the right restrictions
        // repeated in the exit rule, and bound-first contained in the left conjunction.
        let r = report(
            "p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
             p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y).\n\
             p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y).\n\
             p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).",
            "p(5, Y)",
        );
        assert!(r.classes.contains(&FactorableClass::SelectionPushing));
        // Answer-propagating additionally requires equivalent middle conjunctions, and
        // c1 differs from c2; selection-pushing alone suffices for factorability.
        assert!(!r.classes.contains(&FactorableClass::AnswerPropagating));
        assert!(!r.classes.contains(&FactorableClass::Symmetric));
        assert!(r.is_factorable());
    }

    #[test]
    fn symmetric_program_example_4_4() {
        // Example 4.4's shape with the exit rule carrying the right restrictions so the
        // free-exit containment holds; the two left conjunctions (l1, l2) differ, so the
        // program is symmetric but not selection-pushing.
        let r = report(
            "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).\n\
             p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).\n\
             p(X, Y) :- e(X, Y), r1(Y), r2(Y).",
            "p(5, Y)",
        );
        assert!(r.classes.contains(&FactorableClass::Symmetric));
        assert!(r.classes.contains(&FactorableClass::AnswerPropagating));
        assert!(!r.classes.contains(&FactorableClass::SelectionPushing));
    }

    #[test]
    fn answer_propagating_program_example_4_5() {
        // Example 4.5's shape: two combined rules with different left conjunctions plus
        // a right-linear rule whose first conjunction is contained in both, and an exit
        // rule carrying all right restrictions.
        let r = report(
            "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).\n\
             p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).\n\
             p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y).\n\
             p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).",
            "p(5, Y)",
        );
        assert!(r.classes.contains(&FactorableClass::AnswerPropagating));
        assert!(!r.classes.contains(&FactorableClass::SelectionPushing));
        assert!(!r.classes.contains(&FactorableClass::Symmetric));
        assert!(r.is_factorable());
    }

    #[test]
    fn symmetric_fails_when_middles_differ() {
        let r = report(
            "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y).\n\
             p(X, Y) :- l2(X), p(X, U), p(X, V), d(U, V, W), p(W, Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        assert!(!r.classes.contains(&FactorableClass::Symmetric));
        assert!(r
            .failure_reason(FactorableClass::Symmetric)
            .unwrap()
            .contains("middle"));
    }

    #[test]
    fn same_generation_is_not_factorable() {
        let r = report(
            "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
            "sg(1, Y)",
        );
        assert!(!r.is_factorable());
        assert!(!r.rlc_stable);
        assert!(format!("{r}").contains("not factorable"));
    }

    #[test]
    fn answer_propagating_left_rule_needs_bound_exit_condition() {
        // A left-linear rule whose bound conjunction is not implied by bound-exit:
        // answer-propagating fails, selection-pushing also fails (free-exit not
        // contained in the right-linear free), so the program is not factorable.
        let r = report(
            "p(X, Y) :- lguard(X), p(X, U), e(U, Y).\n\
             p(X, Y) :- f(X, V), p(V, Y), rguard(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        assert!(!r.classes.contains(&FactorableClass::AnswerPropagating));
        assert!(!r.is_factorable());
    }
}
