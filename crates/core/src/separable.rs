//! Separable recursions (§6.2 of the paper; Naughton 1988).
//!
//! A recursion is *separable* (Definition 6.4) when its linear recursive rules have no
//! shifting variables, the argument positions connected to non-recursive predicates
//! coincide between head and body occurrence (`tᵢʰ = tᵢᵇ`), those position sets are
//! pairwise equal or disjoint across rules, and the non-recursive part of each body is
//! a single connected component. A separable recursion is *reducible* (Definition 6.6)
//! when no fixed variable occupies a connected position. Theorem 6.3 states that for a
//! reducible separable recursion and a full-selection query, the Magic program is
//! factorable — the subsumption the benchmarks and tests check via the main pipeline.

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Program, Rule, Term};
use factorlog_datalog::graph::recursion_info;
use factorlog_datalog::symbol::Symbol;

use crate::error::{TransformError, TransformResult};

/// Per-rule facts collected by the separability analysis.
#[derive(Clone, Debug)]
pub struct SeparableRuleInfo {
    /// Index of the rule in the program.
    pub rule_index: usize,
    /// Positions of the recursive predicate connected (in this rule) to non-recursive
    /// predicates — the paper's `tᵢʰ` (= `tᵢᵇ` when the rule passes the checks).
    pub connected_positions: BTreeSet<usize>,
    /// Fixed variables of the rule: variables occupying the same position in the head
    /// and the body occurrence (Definition 6.5).
    pub fixed_positions: BTreeSet<usize>,
}

/// The result of the separability analysis.
#[derive(Clone, Debug)]
pub struct SeparableAnalysis {
    /// The recursive predicate.
    pub predicate: Symbol,
    /// Is the recursion separable (Definition 6.4)?
    pub is_separable: bool,
    /// Is it reducible (Definition 6.6)? Only meaningful when separable.
    pub is_reducible: bool,
    /// Why the recursion is not separable / reducible, when it is not.
    pub reason: Option<String>,
    /// Per-recursive-rule details.
    pub rules: Vec<SeparableRuleInfo>,
}

/// Shifting variables (Definition 6.1): a variable appearing at different positions in
/// the head and the body occurrence of the recursive predicate.
fn has_shifting_variable(rule: &Rule, predicate: Symbol) -> bool {
    let occurrence = rule
        .body
        .iter()
        .find(|a| a.predicate == predicate)
        .expect("recursive rule has an occurrence");
    for (i, head_term) in rule.head.terms.iter().enumerate() {
        let Term::Var(head_var) = head_term else {
            continue;
        };
        for (j, body_term) in occurrence.terms.iter().enumerate() {
            if i != j && *body_term == Term::Var(*head_var) {
                return true;
            }
        }
    }
    false
}

/// Analyse whether the (unit, linear) recursion defining `predicate` is separable and
/// reducible.
pub fn analyze_separable(
    program: &Program,
    predicate: Symbol,
) -> TransformResult<SeparableAnalysis> {
    if program.arity_of(predicate).is_none() {
        return Err(TransformError::UnknownQueryPredicate {
            predicate: predicate.as_str().to_string(),
        });
    }
    let info = recursion_info(program);
    let fail = |reason: &str| SeparableAnalysis {
        predicate,
        is_separable: false,
        is_reducible: false,
        reason: Some(reason.to_string()),
        rules: Vec::new(),
    };
    if info.single_recursive_predicate != Some(predicate) {
        return Ok(fail("the program is not a unit recursion on the predicate"));
    }
    if !info.linear {
        return Ok(fail(
            "a separable recursion must have only linear recursive rules",
        ));
    }

    let mut rules_info = Vec::new();
    for &rule_index in &info.recursive_rules {
        let rule = &program.rules[rule_index];
        // Condition (1): no shifting variables.
        if has_shifting_variable(rule, predicate) {
            return Ok(fail(&format!("rule {rule_index} has a shifting variable")));
        }
        let occurrence = rule
            .body
            .iter()
            .find(|a| a.predicate == predicate)
            .expect("recursive rule has an occurrence");
        let nonrecursive: Vec<_> = rule
            .body
            .iter()
            .filter(|a| a.predicate != predicate)
            .collect();
        let nonrec_vars: BTreeSet<Symbol> =
            nonrecursive.iter().flat_map(|a| a.variables()).collect();

        // tᵢʰ / tᵢᵇ: positions sharing a variable with a non-recursive body predicate.
        let connected = |terms: &[Term]| -> BTreeSet<usize> {
            terms
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    Term::Var(v) if nonrec_vars.contains(v) => Some(i),
                    _ => None,
                })
                .collect()
        };
        let head_connected = connected(&rule.head.terms);
        let body_connected = connected(&occurrence.terms);
        // Condition (2): tᵢʰ = tᵢᵇ.
        if head_connected != body_connected {
            return Ok(fail(&format!(
                "rule {rule_index}: the connected positions of the head ({head_connected:?}) and the body occurrence ({body_connected:?}) differ"
            )));
        }
        // Condition (4): the non-recursive literals form one connected component.
        if !nonrecursive.is_empty() && !is_single_component(&nonrecursive) {
            return Ok(fail(&format!(
                "rule {rule_index}: the non-recursive literals do not form a single connected set"
            )));
        }
        // Fixed variables (Definition 6.5).
        let fixed_positions: BTreeSet<usize> = rule
            .head
            .terms
            .iter()
            .enumerate()
            .filter(|&(i, t)| occurrence.terms.get(i) == Some(t) && t.is_var())
            .map(|(i, _)| i)
            .collect();
        rules_info.push(SeparableRuleInfo {
            rule_index,
            connected_positions: head_connected,
            fixed_positions,
        });
    }

    // Condition (3): pairwise equal or disjoint connected-position sets.
    for (a, ra) in rules_info.iter().enumerate() {
        for rb in &rules_info[a + 1..] {
            let same = ra.connected_positions == rb.connected_positions;
            let disjoint = ra.connected_positions.is_disjoint(&rb.connected_positions);
            if !same && !disjoint {
                return Ok(fail(&format!(
                    "rules {} and {} have overlapping but unequal connected-position sets",
                    ra.rule_index, rb.rule_index
                )));
            }
        }
    }

    // Reducibility (Definition 6.6): no fixed variable in a connected position.
    let mut reducible = true;
    let mut reason = None;
    for r in &rules_info {
        if !r.connected_positions.is_disjoint(&r.fixed_positions) {
            reducible = false;
            reason = Some(format!(
                "rule {} has a fixed variable in a connected position",
                r.rule_index
            ));
            break;
        }
    }

    Ok(SeparableAnalysis {
        predicate,
        is_separable: true,
        is_reducible: reducible,
        reason,
        rules: rules_info,
    })
}

fn is_single_component(atoms: &[&factorlog_datalog::ast::Atom]) -> bool {
    if atoms.len() <= 1 {
        return true;
    }
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut vars: BTreeSet<Symbol> = atoms[0].variables().collect();
    reached.insert(0);
    loop {
        let mut progressed = false;
        for (i, atom) in atoms.iter().enumerate() {
            if reached.contains(&i) {
                continue;
            }
            if atom.variables().any(|v| vars.contains(&v)) {
                reached.insert(i);
                vars.extend(atom.variables());
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    reached.len() == atoms.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::classify;
    use crate::conditions::analyze;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn separable(src: &str, pred: &str) -> SeparableAnalysis {
        let program = parse_program(src).unwrap().program;
        analyze_separable(&program, Symbol::intern(pred)).unwrap()
    }

    #[test]
    fn transitive_closure_is_reducible_separable() {
        let a = separable("t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).", "t");
        assert!(a.is_separable);
        assert!(a.is_reducible);
        assert_eq!(a.rules.len(), 1);
        assert_eq!(a.rules[0].connected_positions, BTreeSet::from([1usize]));
        assert_eq!(a.rules[0].fixed_positions, BTreeSet::from([0usize]));
    }

    #[test]
    fn two_rule_separable_recursion_with_disjoint_sides() {
        // One rule touches the second argument, the other touches the first; the
        // connected-position sets are disjoint, which Definition 6.4 allows.
        let a = separable(
            "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- t(W, Y), f(X, W).\nt(X, Y) :- e(X, Y).",
            "t",
        );
        assert!(a.is_separable);
        assert!(a.is_reducible);
        assert_eq!(a.rules.len(), 2);
    }

    #[test]
    fn shifting_variables_break_separability() {
        let a = separable("t(X, Y) :- t(Y, W), e(W, X).\nt(X, Y) :- e(X, Y).", "t");
        assert!(!a.is_separable);
        assert!(a.reason.as_ref().unwrap().contains("shifting"));
    }

    #[test]
    fn same_generation_is_not_separable() {
        let a = separable(
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\nsg(X, Y) :- flat(X, Y).",
            "sg",
        );
        assert!(!a.is_separable);
    }

    #[test]
    fn nonlinear_recursion_is_not_separable() {
        let a = separable("t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).", "t");
        assert!(!a.is_separable);
        assert!(a.reason.as_ref().unwrap().contains("linear"));
    }

    #[test]
    fn disconnected_nonrecursive_part_is_not_separable() {
        // e(W, Y) and g(Z) share no variable: condition (4) fails.
        let a = separable(
            "t(X, Y) :- t(X, W), e(W, Y), g(Z).\nt(X, Y) :- e(X, Y).",
            "t",
        );
        assert!(!a.is_separable);
        assert!(a.reason.as_ref().unwrap().contains("connected"));
    }

    #[test]
    fn fixed_variable_in_connected_position_is_not_reducible() {
        // The fixed variable X is itself connected to the non-recursive predicate, so
        // the recursion is separable but not reducible (the paper's `A` nonempty case,
        // where the separable evaluation algorithm does not reduce arity).
        let a = separable("t(X, Y) :- t(X, W), e(W, X, Y).\nt(X, Y) :- e0(X, Y).", "t");
        assert!(a.is_separable);
        assert!(!a.is_reducible);
        assert!(a.reason.as_ref().unwrap().contains("fixed variable"));
    }

    #[test]
    fn theorem_6_3_reducible_separable_full_selection_is_factorable() {
        // Theorem 6.3: a full selection on a reducible separable recursion yields a
        // factorable Magic program. A full selection binds the argument positions of
        // one side; here the first argument.
        let src = "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).";
        let a = separable(src, "t");
        assert!(a.is_separable && a.is_reducible);
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let classification = classify(&adorned).unwrap();
        assert!(analyze(&classification).is_factorable());
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let program = parse_program("p(X) :- e(X).").unwrap().program;
        assert!(analyze_separable(&program, Symbol::intern("zzz")).is_err());
    }
}
