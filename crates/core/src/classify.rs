//! Rule classification for the factorability analysis: exit, left-linear, right-linear
//! and combined rules (Definitions 4.1–4.3), and the *RLC-stable* unit-program check
//! (Definition 4.4).
//!
//! Classification operates on the **adorned** program: the adornment determines which
//! argument positions of the recursive predicate are bound (`X̄`) and free (`Ȳ`), and a
//! body occurrence of the predicate is
//!
//! * a *left-linear occurrence* if its bound arguments are exactly the head's bound
//!   variables `X̄`, and
//! * a *right-linear occurrence* if its free arguments are exactly the head's free
//!   variables `Ȳ`.
//!
//! The non-recursive body literals are partitioned into connected components (by shared
//! variables) and each component is assigned to the `left`/`first`/`center`/`right`/
//! `last` conjunction of the matching rule template; a rule that does not fit any
//! template is classified [`RuleClass::Other`].
//!
//! The paper also allows a global permutation of the predicate's argument order to make
//! a program fit the templates (Example 4.1); this module classifies the program as
//! written — use [`permute_arguments`] to apply such a permutation explicitly.

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Atom, Program, Query, Rule, Term};
use factorlog_datalog::symbol::Symbol;

use crate::adorn::AdornedProgram;
use crate::error::{TransformError, TransformResult};
use crate::standard_form::to_standard_form;

/// The class of one rule of the recursive predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleClass {
    /// No occurrence of the recursive predicate in the body.
    Exit,
    /// Definition 4.1: `p(X̄, Ȳ) :- left(X̄), p(X̄, Ū1), ..., p(X̄, Ūm), last(Ū.., Ȳ).`
    LeftLinear,
    /// Definition 4.2: `p(X̄, Ȳ) :- first(X̄, V̄), p(V̄, Ȳ), right(Ȳ).`
    RightLinear,
    /// Definition 4.3: left-linear occurrences plus one right-linear occurrence,
    /// connected by a `center` conjunction.
    Combined,
    /// The rule fits none of the templates; the reason is recorded.
    Other(String),
}

impl RuleClass {
    /// Is this one of the classes allowed in an RLC-stable program?
    pub fn is_rlc(&self) -> bool {
        !matches!(self, RuleClass::Other(_))
    }
}

/// One rule of the recursive predicate together with its classification and the
/// conjunctions named by Definition 4.5.
#[derive(Clone, Debug)]
pub struct ClassifiedRule {
    /// Index of the rule within the adorned program.
    pub rule_index: usize,
    /// The rule, converted to standard form for analysis.
    pub rule: Rule,
    /// The class.
    pub class: RuleClass,
    /// `X̄`: head variables in bound positions.
    pub head_bound: Vec<Symbol>,
    /// `Ȳ`: head variables in free positions.
    pub head_free: Vec<Symbol>,
    /// Body indices of left-linear occurrences of the recursive predicate.
    pub left_occurrences: Vec<usize>,
    /// Body index of the right-linear occurrence, if any.
    pub right_occurrence: Option<usize>,
    /// `Ū`: concatenated free-position variables of the left-linear occurrences.
    pub u_vars: Vec<Symbol>,
    /// `V̄`: bound-position variables of the right-linear occurrence.
    pub v_vars: Vec<Symbol>,
    /// The `left(X̄)` conjunction (left-linear and combined rules).
    pub left_conj: Vec<Atom>,
    /// The `first(X̄, V̄)` conjunction (right-linear rules).
    pub first_conj: Vec<Atom>,
    /// The `center(Ū, V̄)` conjunction (combined rules).
    pub center_conj: Vec<Atom>,
    /// The `right(Ȳ)` conjunction (right-linear and combined rules).
    pub right_conj: Vec<Atom>,
    /// The `last(Ū.., Ȳ)` conjunction (left-linear rules).
    pub last_conj: Vec<Atom>,
    /// The whole body (exit rules): `exit(X̄, Ȳ)`.
    pub exit_conj: Vec<Atom>,
}

/// The classification of a whole (unit) program.
#[derive(Clone, Debug)]
pub struct ProgramClassification {
    /// The adorned recursive predicate `p^a`.
    pub predicate: Symbol,
    /// The original (unadorned) predicate.
    pub original_predicate: Symbol,
    /// The adornment string.
    pub adornment: String,
    /// Bound argument positions of `p^a`.
    pub bound_positions: Vec<usize>,
    /// Free argument positions of `p^a`.
    pub free_positions: Vec<usize>,
    /// Per-rule classification, in program order.
    pub rules: Vec<ClassifiedRule>,
}

impl ProgramClassification {
    /// The exit rules.
    pub fn exit_rules(&self) -> impl Iterator<Item = &ClassifiedRule> + '_ {
        self.rules.iter().filter(|r| r.class == RuleClass::Exit)
    }

    /// The recursive (non-exit) rules.
    pub fn recursive_rules(&self) -> impl Iterator<Item = &ClassifiedRule> + '_ {
        self.rules.iter().filter(|r| r.class != RuleClass::Exit)
    }

    /// Definition 4.4: the program consists only of right-linear, left-linear and
    /// combined rules plus exactly one exit rule (and has a single adornment, which
    /// [`classify`] already guarantees).
    pub fn is_rlc_stable(&self) -> bool {
        self.rules.iter().all(|r| r.class.is_rlc()) && self.exit_rules().count() == 1
    }

    /// Are all recursive rules of the given class?
    pub fn all_recursive_rules_are(&self, class: &RuleClass) -> bool {
        self.recursive_rules().all(|r| &r.class == class)
    }

    /// A human-readable summary (used by the report binary and examples).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "predicate {} (adornment {}), {} rule(s):",
            self.predicate,
            self.adornment,
            self.rules.len()
        );
        for r in &self.rules {
            let class = match &r.class {
                RuleClass::Exit => "exit".to_string(),
                RuleClass::LeftLinear => "left-linear".to_string(),
                RuleClass::RightLinear => "right-linear".to_string(),
                RuleClass::Combined => "combined".to_string(),
                RuleClass::Other(reason) => format!("other ({reason})"),
            };
            let _ = writeln!(out, "  rule {}: {}  [{}]", r.rule_index, r.rule, class);
        }
        let _ = writeln!(out, "  RLC-stable: {}", self.is_rlc_stable());
        out
    }
}

/// Classify an adorned unit program.
///
/// Requirements: the adorned program must contain rules for exactly one adorned
/// predicate (the paper's unit-program condition of a single IDB predicate with a
/// single reachable adornment). Rules are converted to standard form internally.
pub fn classify(adorned: &AdornedProgram) -> TransformResult<ProgramClassification> {
    let adorned_preds = adorned.adorned_predicates();
    if adorned_preds.is_empty() {
        return Err(TransformError::NotUnitProgram {
            reason: "the adorned program has no IDB rules (query on an EDB predicate)".into(),
        });
    }
    if adorned_preds.len() > 1 {
        let names: Vec<&str> = adorned_preds.iter().map(|s| s.as_str()).collect();
        return Err(TransformError::NotUnitProgram {
            reason: format!(
                "more than one adorned IDB predicate is reachable from the query: {}",
                names.join(", ")
            ),
        });
    }
    let predicate = adorned_preds[0];
    let info = adorned.info(predicate).expect("adorned predicate has info");
    let bound_positions = info.bound_positions();
    let free_positions = info.free_positions();

    let standard = to_standard_form(&adorned.program, predicate);
    let rules = standard
        .rules
        .iter()
        .enumerate()
        .map(|(i, rule)| classify_rule(i, rule, predicate, &bound_positions, &free_positions))
        .collect();

    Ok(ProgramClassification {
        predicate,
        original_predicate: info.original,
        adornment: info.adornment.clone(),
        bound_positions,
        free_positions,
        rules,
    })
}

fn vars_at(atom: &Atom, positions: &[usize]) -> Vec<Symbol> {
    positions
        .iter()
        .map(|&i| match atom.terms[i] {
            Term::Var(v) => v,
            Term::Const(_) => unreachable!("standard form guarantees variables"),
        })
        .collect()
}

fn classify_rule(
    rule_index: usize,
    rule: &Rule,
    predicate: Symbol,
    bound_positions: &[usize],
    free_positions: &[usize],
) -> ClassifiedRule {
    let head_bound = vars_at(&rule.head, bound_positions);
    let head_free = vars_at(&rule.head, free_positions);

    let mut classified = ClassifiedRule {
        rule_index,
        rule: rule.clone(),
        class: RuleClass::Other(String::new()),
        head_bound: head_bound.clone(),
        head_free: head_free.clone(),
        left_occurrences: Vec::new(),
        right_occurrence: None,
        u_vars: Vec::new(),
        v_vars: Vec::new(),
        left_conj: Vec::new(),
        first_conj: Vec::new(),
        center_conj: Vec::new(),
        right_conj: Vec::new(),
        last_conj: Vec::new(),
        exit_conj: Vec::new(),
    };

    // Occurrences of the recursive predicate in the body.
    let p_positions: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, a)| (a.predicate == predicate).then_some(i))
        .collect();
    let non_p: Vec<&Atom> = rule
        .body
        .iter()
        .filter(|a| a.predicate != predicate)
        .collect();

    if p_positions.is_empty() {
        classified.class = RuleClass::Exit;
        classified.exit_conj = non_p.iter().map(|a| (*a).clone()).collect();
        return classified;
    }

    // Identify left-linear and right-linear occurrences. The definitional templates
    // (Defs 4.1–4.3) use distinct variable vectors: the "other side" of an occurrence
    // (Ū for a left-linear occurrence, V̄ for a right-linear occurrence) must not reuse
    // head variables — a reuse is exactly the situation of Examples 4.1/5.1/5.2 where
    // the theorems do not apply directly and a permutation or reduction is needed.
    let head_vars: BTreeSet<Symbol> = head_bound.iter().chain(head_free.iter()).copied().collect();
    let mut left_occurrences: Vec<usize> = Vec::new();
    let mut right_occurrences: Vec<usize> = Vec::new();
    let mut unclassified_occurrence = false;
    for &i in &p_positions {
        let atom = &rule.body[i];
        let occ_bound = vars_at(atom, bound_positions);
        let occ_free = vars_at(atom, free_positions);
        let bound_matches_head = occ_bound == head_bound;
        let free_matches_head = occ_free == head_free;
        if bound_matches_head && free_matches_head {
            classified.class = RuleClass::Other("the head literal occurs in the body".to_string());
            return classified;
        }
        let is_left = bound_matches_head && occ_free.iter().all(|v| !head_vars.contains(v));
        let is_right = free_matches_head && occ_bound.iter().all(|v| !head_vars.contains(v));
        if is_left {
            left_occurrences.push(i);
        } else if is_right {
            right_occurrences.push(i);
        } else {
            unclassified_occurrence = true;
        }
    }
    if unclassified_occurrence {
        classified.class = RuleClass::Other(
            "a recursive occurrence is neither left-linear nor right-linear".to_string(),
        );
        return classified;
    }
    if right_occurrences.len() > 1 {
        classified.class = RuleClass::Other("more than one right-linear occurrence".to_string());
        return classified;
    }
    classified.left_occurrences = left_occurrences.clone();
    classified.right_occurrence = right_occurrences.first().copied();
    for &i in &left_occurrences {
        classified
            .u_vars
            .extend(vars_at(&rule.body[i], free_positions));
    }
    if let Some(r) = classified.right_occurrence {
        classified.v_vars = vars_at(&rule.body[r], bound_positions);
    }

    // Partition the non-recursive literals into connected components.
    let components = connected_components(&non_p);

    // Distinguished variable sets.
    let xs: BTreeSet<Symbol> = head_bound.iter().copied().collect();
    let ys: BTreeSet<Symbol> = head_free.iter().copied().collect();
    let us: BTreeSet<Symbol> = classified.u_vars.iter().copied().collect();
    let vs: BTreeSet<Symbol> = classified.v_vars.iter().copied().collect();

    // Assign each component to a conjunction according to which distinguished
    // variables it touches; the allowed targets depend on the candidate rule shape.
    #[derive(PartialEq, Debug, Clone, Copy)]
    enum Target {
        Left,
        First,
        Center,
        Right,
        Last,
        None,
    }

    let has_left = !left_occurrences.is_empty();
    let has_right = classified.right_occurrence.is_some();

    let mut ok = true;
    let mut reason = String::new();
    let mut assignments: Vec<(Target, Vec<Atom>)> = Vec::new();
    for component in &components {
        let cvars: BTreeSet<Symbol> = component.iter().flat_map(|a| a.variables()).collect();
        let touches_x = !cvars.is_disjoint(&xs);
        let touches_y = !cvars.is_disjoint(&ys);
        let touches_u = !cvars.is_disjoint(&us);
        let touches_v = !cvars.is_disjoint(&vs);
        let target = match (has_left, has_right) {
            // Combined rule shape: left(X̄) | center(Ū, V̄) | right(Ȳ).
            (true, true) => {
                if touches_x && !touches_y && !touches_u && !touches_v {
                    Target::Left
                } else if !touches_x && !touches_y && (touches_u || touches_v) {
                    Target::Center
                } else if !touches_x && touches_y && !touches_u && !touches_v {
                    Target::Right
                } else if !touches_x && !touches_y && !touches_u && !touches_v {
                    // A detached guard: treat it as part of `left` (it restricts rule
                    // applicability independently of any distinguished variable).
                    Target::Left
                } else {
                    Target::None
                }
            }
            // Right-linear shape: first(X̄, V̄) | right(Ȳ).
            (false, true) => {
                if !touches_y && !touches_u {
                    Target::First
                } else if touches_y && !touches_x && !touches_u && !touches_v {
                    Target::Right
                } else {
                    Target::None
                }
            }
            // Left-linear shape: left(X̄) | last(Ū.., Ȳ).
            (true, false) => {
                if touches_x && !touches_y && !touches_u && !touches_v {
                    Target::Left
                } else if !touches_x && (touches_u || touches_y) {
                    Target::Last
                } else if !touches_x && !touches_y && !touches_u && !touches_v {
                    Target::Left
                } else {
                    Target::None
                }
            }
            (false, false) => unreachable!("handled by the exit case"),
        };
        if target == Target::None {
            ok = false;
            reason = format!(
                "a non-recursive conjunction mixes distinguished variable groups: {}",
                component
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            break;
        }
        assignments.push((target, component.iter().map(|a| (*a).clone()).collect()));
    }

    if !ok {
        classified.class = RuleClass::Other(reason);
        return classified;
    }

    for (target, atoms) in assignments {
        match target {
            Target::Left => classified.left_conj.extend(atoms),
            Target::First => classified.first_conj.extend(atoms),
            Target::Center => classified.center_conj.extend(atoms),
            Target::Right => classified.right_conj.extend(atoms),
            Target::Last => classified.last_conj.extend(atoms),
            Target::None => unreachable!(),
        }
    }

    classified.class = match (has_left, has_right) {
        (true, true) => RuleClass::Combined,
        (false, true) => RuleClass::RightLinear,
        (true, false) => RuleClass::LeftLinear,
        (false, false) => unreachable!(),
    };
    classified
}

/// Group atoms into connected components by shared variables.
fn connected_components<'a>(atoms: &[&'a Atom]) -> Vec<Vec<&'a Atom>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let vi: BTreeSet<Symbol> = atoms[i].variables().collect();
            if atoms[j].variables().any(|v| vi.contains(&v)) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<&Atom>> =
        std::collections::BTreeMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(*atom);
    }
    groups.into_values().collect()
}

/// Apply a permutation of argument positions of `predicate` consistently to every
/// occurrence in the program and to the query (`new position i` takes `old position
/// permutation[i]`). As the paper notes after Definition 4.3, such permutations do not
/// change the computed relation (up to column renaming) and can make a program fit the
/// left/right/combined templates (Example 4.1).
pub fn permute_arguments(
    program: &Program,
    query: &Query,
    predicate: Symbol,
    permutation: &[usize],
) -> TransformResult<(Program, Query)> {
    let arity =
        program
            .arity_of(predicate)
            .ok_or_else(|| TransformError::UnknownQueryPredicate {
                predicate: predicate.as_str().to_string(),
            })?;
    let mut seen = vec![false; arity];
    if permutation.len() != arity || permutation.iter().any(|&i| i >= arity) {
        return Err(TransformError::BadArgumentSplit {
            reason: format!("permutation {permutation:?} is not over 0..{arity}"),
        });
    }
    for &i in permutation {
        if seen[i] {
            return Err(TransformError::BadArgumentSplit {
                reason: format!("permutation {permutation:?} repeats position {i}"),
            });
        }
        seen[i] = true;
    }
    let permute_atom = |atom: &Atom| -> Atom {
        if atom.predicate != predicate {
            return atom.clone();
        }
        Atom::new(
            atom.predicate,
            permutation.iter().map(|&i| atom.terms[i]).collect(),
        )
    };
    let rules = program
        .rules
        .iter()
        .map(|r| {
            Rule::new(
                permute_atom(&r.head),
                r.body.iter().map(permute_atom).collect(),
            )
        })
        .collect();
    Ok((
        Program::from_rules(rules),
        Query::new(permute_atom(&query.atom)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn classified(src: &str, query: &str) -> ProgramClassification {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query).unwrap();
        classify(&adorned).unwrap()
    }

    #[test]
    fn three_rule_transitive_closure_classes() {
        // Example 1.1/4.2: nonlinear rule is combined, e-then-t is right-linear,
        // t-then-e is left-linear, plus the exit rule.
        let c = classified(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert_eq!(c.adornment, "bf");
        assert_eq!(c.rules[0].class, RuleClass::Combined);
        assert_eq!(c.rules[1].class, RuleClass::RightLinear);
        assert_eq!(c.rules[2].class, RuleClass::LeftLinear);
        assert_eq!(c.rules[3].class, RuleClass::Exit);
        assert!(c.is_rlc_stable());
        assert_eq!(c.exit_rules().count(), 1);
        assert_eq!(c.recursive_rules().count(), 3);
        // Conjunction contents.
        assert!(c.rules[0].left_conj.is_empty());
        assert!(c.rules[0].center_conj.is_empty());
        assert!(c.rules[0].right_conj.is_empty());
        assert_eq!(c.rules[1].first_conj.len(), 1);
        assert!(c.rules[1].right_conj.is_empty());
        assert_eq!(c.rules[2].last_conj.len(), 1);
        assert!(c.rules[2].left_conj.is_empty());
        assert_eq!(c.rules[3].exit_conj.len(), 1);
        // Distinguished vectors of the combined rule: U = (W), V = (W).
        assert_eq!(c.rules[0].u_vars.len(), 1);
        assert_eq!(c.rules[0].v_vars.len(), 1);
        assert_eq!(c.rules[0].u_vars, c.rules[0].v_vars);
    }

    #[test]
    fn example_4_3_shape_is_rlc_stable() {
        // The program of Example 4.3: two combined rules, one right-linear rule, exit.
        let c = classified(
            "p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
             p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).\n\
             p(X, Y) :- f(X, V), p(V, Y), r3(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        assert_eq!(c.rules[0].class, RuleClass::Combined);
        assert_eq!(c.rules[1].class, RuleClass::Combined);
        assert_eq!(c.rules[2].class, RuleClass::RightLinear);
        assert_eq!(c.rules[3].class, RuleClass::Exit);
        assert!(c.is_rlc_stable());
        // The combined rules' conjunctions.
        assert_eq!(c.rules[0].left_conj.len(), 1);
        assert_eq!(c.rules[0].center_conj.len(), 1);
        assert_eq!(c.rules[0].right_conj.len(), 1);
        // The right-linear rule's conjunctions.
        assert_eq!(c.rules[2].first_conj.len(), 1);
        assert_eq!(c.rules[2].right_conj.len(), 1);
        let summary = c.summary();
        assert!(summary.contains("combined"));
        assert!(summary.contains("right-linear"));
    }

    #[test]
    fn symmetric_example_4_4_shape() {
        let c = classified(
            "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).\n\
             p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        assert_eq!(c.rules[0].class, RuleClass::Combined);
        assert_eq!(c.rules[1].class, RuleClass::Combined);
        assert_eq!(c.rules[0].left_occurrences.len(), 2);
        assert_eq!(c.rules[0].u_vars.len(), 2);
        assert!(c.is_rlc_stable());
    }

    #[test]
    fn pmem_standard_form_is_right_linear() {
        // Example 4.6 in standard form (body ordered so the list lookup binds T before
        // the recursive call).
        let c = classified(
            "pmem(X, L) :- list(X, T, L), p(X).\n\
             pmem(X, L) :- list(H, T, L), pmem(X, T).",
            "pmem(X, 100)",
        );
        assert_eq!(c.adornment, "fb");
        assert_eq!(c.rules[0].class, RuleClass::Exit);
        assert_eq!(c.rules[1].class, RuleClass::RightLinear);
        assert!(c.is_rlc_stable());
    }

    #[test]
    fn same_generation_is_not_rlc() {
        // sg's recursive occurrence is neither left- nor right-linear: its bound
        // argument is U (not X) and its free argument is V (not Y).
        let c = classified(
            "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
            "sg(1, Y)",
        );
        assert_eq!(c.rules[0].class, RuleClass::Exit);
        assert!(matches!(c.rules[1].class, RuleClass::Other(_)));
        assert!(!c.is_rlc_stable());
    }

    #[test]
    fn two_exit_rules_break_rlc_stability() {
        let c = classified(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\nt(X, Y) :- f(X, Y).",
            "t(5, Y)",
        );
        assert_eq!(c.exit_rules().count(), 2);
        assert!(!c.is_rlc_stable());
    }

    #[test]
    fn head_in_body_is_other() {
        let c = classified(
            "t(X, Y) :- t(X, Y), e(X, Y).\nt(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert!(matches!(c.rules[0].class, RuleClass::Other(ref r) if r.contains("head")));
    }

    #[test]
    fn mixed_component_is_other() {
        // The EDB literal g(X, Y) connects a bound head variable directly to a free
        // head variable, fitting no template slot.
        let c = classified(
            "t(X, Y) :- e(X, W), t(W, Y), g(X, Y).\nt(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert!(matches!(c.rules[0].class, RuleClass::Other(_)));
    }

    #[test]
    fn non_unit_program_is_rejected() {
        let program = parse_program(
            "p(X, Y) :- q(X, W), p(W, Y).\np(X, Y) :- e(X, Y).\nq(X, Y) :- f(X, W), q(W, Y).\nq(X, Y) :- f(X, Y).",
        )
        .unwrap()
        .program;
        let query = parse_query("p(1, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        assert!(matches!(
            classify(&adorned),
            Err(TransformError::NotUnitProgram { .. })
        ));
    }

    #[test]
    fn example_4_1_needs_rearrangement() {
        // Example 4.1: t^bfb(X, Y, Z) :- e(Y, W), t(X, W, Z). As written, the
        // left-to-right SIP gives the body occurrence the adornment bbb (W and Y are
        // bound by e/2 before the recursive call), so the program is not a unit
        // program. Rearranging the body so the recursive call comes first keeps a
        // single adornment and the rule is then recognized as left-linear — the
        // rearranged-and-permuted form the paper exhibits.
        let src = "t(X, Y, Z) :- e(Y, W), t(X, W, Z).\nt(X, Y, Z) :- f(X, Y, Z).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(1, Y, 3)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        assert!(matches!(
            classify(&adorned),
            Err(TransformError::NotUnitProgram { .. })
        ));

        let rearranged = "t(X, Y, Z) :- t(X, W, Z), e(W, Y).\nt(X, Y, Z) :- f(X, Y, Z).";
        let program = parse_program(rearranged).unwrap().program;
        let adorned = adorn(&program, &query).unwrap();
        let c = classify(&adorned).unwrap();
        assert_eq!(c.adornment, "bfb");
        assert_eq!(c.rules[0].class, RuleClass::LeftLinear);
        assert_eq!(c.rules[1].class, RuleClass::Exit);
        assert!(c.is_rlc_stable());
    }

    #[test]
    fn argument_permutation_is_consistent_and_invertible() {
        let src = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let t = Symbol::intern("t");
        let (swapped, squery) = permute_arguments(&program, &query, t, &[1, 0]).unwrap();
        assert_eq!(squery.adornment(), "fb");
        assert_eq!(
            format!("{}", swapped.rules[0]),
            "t(Y, X) :- e(X, W), t(Y, W)."
        );
        // Applying the same swap again restores the original program and query.
        let (restored, rquery) = permute_arguments(&swapped, &squery, t, &[1, 0]).unwrap();
        assert_eq!(restored, program);
        assert_eq!(rquery, query);
    }

    #[test]
    fn permutation_validation() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let query = parse_query("t(1, Y)").unwrap();
        let t = Symbol::intern("t");
        assert!(permute_arguments(&program, &query, t, &[0]).is_err());
        assert!(permute_arguments(&program, &query, t, &[0, 0]).is_err());
        assert!(permute_arguments(&program, &query, t, &[0, 2]).is_err());
        assert!(permute_arguments(&program, &query, Symbol::intern("zz"), &[0, 1]).is_err());
    }

    #[test]
    fn detached_guard_goes_to_left() {
        let c = classified(
            "t(X, Y) :- guard(9), t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        assert_eq!(c.rules[0].class, RuleClass::LeftLinear);
        assert_eq!(c.rules[0].left_conj.len(), 1);
    }

    #[test]
    fn non_standard_rule_is_converted_before_classification() {
        // t(X, X) in the head: converted to standard form with an equal/2 atom, then
        // classified; the equal atom lands in a conjunction rather than breaking the
        // analysis.
        let c = classified("t(X, Y) :- t(X, W), e(W, Y).\nt(X, X) :- n(X).", "t(5, Y)");
        assert_eq!(c.rules[0].class, RuleClass::LeftLinear);
        assert_eq!(c.rules[1].class, RuleClass::Exit);
    }
}
