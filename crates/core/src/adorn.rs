//! Adornment: annotate IDB predicates with binding patterns (`b`/`f` per argument)
//! propagated from the query by the left-to-right sideways-information-passing strategy
//! the paper assumes (§2.1, §4.1).
//!
//! `t(5, Y)` produces the adorned predicate `t_bf`; a rule body is processed left to
//! right, a variable being *bound* if it is a query/head constant binding or appears in
//! an earlier body literal. Only adornments reachable from the query are generated.
//! The factoring analysis additionally requires a *single* reachable adornment for the
//! recursive predicate (a *unit program*); that check lives in [`crate::classify`].

use std::collections::BTreeSet;

use factorlog_datalog::ast::{Atom, Program, Query, Rule, Term};
use factorlog_datalog::fx::FxHashMap;
use factorlog_datalog::symbol::Symbol;
use factorlog_datalog::validate;

use crate::error::{TransformError, TransformResult};

/// Metadata about one adorned predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornmentInfo {
    /// The original predicate.
    pub original: Symbol,
    /// The adornment string: one `b` or `f` per argument position.
    pub adornment: String,
}

impl AdornmentInfo {
    /// Positions marked bound.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.adornment
            .chars()
            .enumerate()
            .filter_map(|(i, c)| (c == 'b').then_some(i))
            .collect()
    }

    /// Positions marked free.
    pub fn free_positions(&self) -> Vec<usize> {
        self.adornment
            .chars()
            .enumerate()
            .filter_map(|(i, c)| (c == 'f').then_some(i))
            .collect()
    }
}

/// The result of adorning a program with respect to a query.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// Rules with IDB predicates renamed to their adorned versions.
    pub program: Program,
    /// The query, rewritten onto the adorned query predicate.
    pub query: Query,
    /// The original query.
    pub original_query: Query,
    /// Every predicate of the original program (used by later transformations to avoid
    /// name collisions when minting new predicates).
    pub original_predicates: BTreeSet<Symbol>,
    info: FxHashMap<Symbol, AdornmentInfo>,
    by_original: FxHashMap<(Symbol, String), Symbol>,
}

impl AdornedProgram {
    /// Adornment metadata for an adorned predicate, if `predicate` is one.
    pub fn info(&self, predicate: Symbol) -> Option<&AdornmentInfo> {
        self.info.get(&predicate)
    }

    /// Is `predicate` an adorned IDB predicate?
    pub fn is_adorned(&self, predicate: Symbol) -> bool {
        self.info.contains_key(&predicate)
    }

    /// The adorned symbol for `(original, adornment)`, if that adornment was reachable.
    pub fn adorned_symbol(&self, original: Symbol, adornment: &str) -> Option<Symbol> {
        self.by_original
            .get(&(original, adornment.to_string()))
            .copied()
    }

    /// All adorned predicates, sorted by name for determinism.
    pub fn adorned_predicates(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.info.keys().copied().collect();
        v.sort_by_key(|s| s.as_str());
        v
    }

    /// The adorned versions of `original` that are reachable from the query.
    pub fn adornments_of(&self, original: Symbol) -> Vec<&AdornmentInfo> {
        let mut v: Vec<&AdornmentInfo> = self
            .info
            .values()
            .filter(|i| i.original == original)
            .collect();
        v.sort_by(|a, b| a.adornment.cmp(&b.adornment));
        v
    }
}

/// Compute the adornment of a literal given the set of currently bound variables.
fn literal_adornment(atom: &Atom, bound: &BTreeSet<Symbol>) -> String {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(_) => 'b',
            Term::Var(v) => {
                if bound.contains(v) {
                    'b'
                } else {
                    'f'
                }
            }
        })
        .collect()
}

/// Adorn `program` with respect to `query`.
///
/// The query predicate must be used with a consistent arity; if the query predicate is
/// an EDB predicate (has no rules) the result contains an empty program and the query
/// unchanged.
pub fn adorn(program: &Program, query: &Query) -> TransformResult<AdornedProgram> {
    validate::check_program(program).map_err(TransformError::Invalid)?;
    if let Some(arity) = program.arity_of(query.atom.predicate) {
        if arity != query.atom.arity() {
            return Err(TransformError::QueryArityMismatch {
                predicate: query.atom.predicate.as_str().to_string(),
                program_arity: arity,
                query_arity: query.atom.arity(),
            });
        }
    } else {
        return Err(TransformError::UnknownQueryPredicate {
            predicate: query.atom.predicate.as_str().to_string(),
        });
    }

    let idb: BTreeSet<Symbol> = program.idb_predicates();
    let existing_names: BTreeSet<&'static str> = program
        .all_predicates()
        .into_iter()
        .map(|p| p.as_str())
        .collect();

    let mut out = AdornedProgram {
        program: Program::new(),
        query: query.clone(),
        original_query: query.clone(),
        original_predicates: program.all_predicates(),
        info: FxHashMap::default(),
        by_original: FxHashMap::default(),
    };

    if !idb.contains(&query.atom.predicate) {
        // Query on an EDB predicate: nothing to adorn.
        return Ok(out);
    }

    // Mint the adorned name for (predicate, adornment), avoiding collisions with
    // existing predicate names.
    let mint = |original: Symbol, adornment: &str, out: &mut AdornedProgram| -> Symbol {
        if let Some(&sym) = out.by_original.get(&(original, adornment.to_string())) {
            return sym;
        }
        let mut name = format!("{}_{}", original.as_str(), adornment);
        while existing_names.contains(name.as_str()) {
            name.push('_');
        }
        let sym = Symbol::intern(&name);
        out.info.insert(
            sym,
            AdornmentInfo {
                original,
                adornment: adornment.to_string(),
            },
        );
        out.by_original
            .insert((original, adornment.to_string()), sym);
        sym
    };

    let query_adornment = query.adornment();
    let query_sym = mint(query.atom.predicate, &query_adornment, &mut out);
    out.query = Query::new(query.atom.with_predicate(query_sym));

    // Worklist of adorned predicates whose rules still need to be generated.
    let mut worklist: Vec<Symbol> = vec![query_sym];
    let mut processed: BTreeSet<Symbol> = BTreeSet::new();

    while let Some(adorned_sym) = worklist.pop() {
        if !processed.insert(adorned_sym) {
            continue;
        }
        let info = out.info[&adorned_sym].clone();
        for rule in program.rules_for(info.original) {
            // Bound variables: head variables in bound positions.
            let mut bound: BTreeSet<Symbol> = BTreeSet::new();
            for &pos in &info.bound_positions() {
                if let Term::Var(v) = rule.head.terms[pos] {
                    bound.insert(v);
                }
            }
            let mut new_body = Vec::with_capacity(rule.body.len());
            for literal in &rule.body {
                if idb.contains(&literal.predicate) {
                    let adornment = literal_adornment(literal, &bound);
                    let body_sym = mint(literal.predicate, &adornment, &mut out);
                    if !processed.contains(&body_sym) {
                        worklist.push(body_sym);
                    }
                    new_body.push(literal.with_predicate(body_sym));
                } else {
                    new_body.push(literal.clone());
                }
                // After evaluating the literal, all its variables are bound.
                for v in literal.variables() {
                    bound.insert(v);
                }
            }
            out.program
                .push(Rule::new(rule.head.with_predicate(adorned_sym), new_body));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn adorned(src: &str, query: &str) -> AdornedProgram {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        adorn(&program, &query).unwrap()
    }

    #[test]
    fn adorns_linear_transitive_closure() {
        let out = adorned(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
            "t(5, Y)",
        );
        assert_eq!(out.query.atom.predicate.as_str(), "t_bf");
        assert_eq!(out.program.len(), 2);
        assert_eq!(
            format!("{}", out.program.rules[1]),
            "t_bf(X, Y) :- e(X, W), t_bf(W, Y)."
        );
        let info = out.info(Symbol::intern("t_bf")).unwrap();
        assert_eq!(info.adornment, "bf");
        assert_eq!(info.bound_positions(), vec![0]);
        assert_eq!(info.free_positions(), vec![1]);
        assert_eq!(info.original, Symbol::intern("t"));
    }

    #[test]
    fn adorns_the_three_rule_transitive_closure_with_one_adornment() {
        // Example 1.1 / 4.2: all three recursive occurrences get the bf adornment
        // because the bound argument propagates left to right.
        let out = adorned(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        let t = Symbol::intern("t");
        assert_eq!(out.adornments_of(t).len(), 1, "single reachable adornment");
        assert_eq!(out.adornments_of(t)[0].adornment, "bf");
        assert_eq!(out.program.len(), 4);
        assert_eq!(
            format!("{}", out.program.rules[0]),
            "t_bf(X, Y) :- t_bf(X, W), t_bf(W, Y)."
        );
    }

    #[test]
    fn free_query_gives_ff_adornment() {
        let out = adorned(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
            "t(X, Y)",
        );
        assert_eq!(out.query.atom.predicate.as_str(), "t_ff");
        let info = out.info(Symbol::intern("t_ff")).unwrap();
        assert_eq!(info.bound_positions(), Vec::<usize>::new());
    }

    #[test]
    fn same_generation_gets_bf_for_subqueries() {
        let out = adorned(
            "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).",
            "sg(1, Y)",
        );
        // The inner sg call sees U bound (from up/2) and V free.
        assert_eq!(out.adorned_predicates().len(), 1);
        assert_eq!(
            format!("{}", out.program.rules[1]),
            "sg_bf(X, Y) :- up(X, U), sg_bf(U, V), down(V, Y)."
        );
    }

    #[test]
    fn multiple_adornments_when_bindings_differ() {
        // p's second rule calls p with both arguments free because nothing binds Z
        // before the call.
        let out = adorned(
            "p(X, Y) :- e(X, Y).\np(X, Y) :- p(Z, W), f(Z, X), g(W, Y).",
            "p(5, Y)",
        );
        let p = Symbol::intern("p");
        let adornments: Vec<String> = out
            .adornments_of(p)
            .iter()
            .map(|i| i.adornment.clone())
            .collect();
        assert_eq!(adornments, vec!["bf".to_string(), "ff".to_string()]);
        // Both adorned predicates have rules.
        assert_eq!(out.program.len(), 4);
    }

    #[test]
    fn constants_in_body_literals_are_bound() {
        let out = adorned("p(X) :- q(3, X).\nq(A, B) :- r(A, B).", "p(Y)");
        // q is called with its first argument a constant: adornment bf.
        assert!(out.adorned_symbol(Symbol::intern("q"), "bf").is_some());
    }

    #[test]
    fn unknown_query_predicate_is_an_error() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let query = parse_query("zzz(5, Y)").unwrap();
        assert!(matches!(
            adorn(&program, &query),
            Err(TransformError::UnknownQueryPredicate { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let query = parse_query("t(5)").unwrap();
        assert!(matches!(
            adorn(&program, &query),
            Err(TransformError::QueryArityMismatch { .. })
        ));
    }

    #[test]
    fn query_on_edb_predicate_yields_empty_program() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let query = parse_query("e(1, Y)").unwrap();
        let out = adorn(&program, &query).unwrap();
        assert!(out.program.is_empty());
        assert_eq!(out.query, query);
    }

    #[test]
    fn adorned_name_collisions_are_avoided() {
        // A user predicate literally named `t_bf` already exists; the adorned name
        // must not collide with it.
        let out = adorned(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nt_bf(A) :- e(A, A).",
            "t(5, Y)",
        );
        assert_eq!(out.query.atom.predicate.as_str(), "t_bf_");
    }

    #[test]
    fn head_constants_in_free_positions_are_not_dropped() {
        // Regression test for the ROADMAP-flagged report that the adornment pass
        // silently drops rules whose head carries a constant in a free position.
        // Every rule must survive adornment verbatim (modulo predicate renaming),
        // whether the head constant falls in a free or a bound position of the
        // reachable adornment.
        let out = adorned(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, 7) :- mark(X).\n\
             t(7, Y) :- source(Y).\n\
             t(3, 7).",
            "t(3, Y)",
        );
        assert_eq!(
            out.program.len(),
            5,
            "no rule may be dropped:\n{}",
            out.program
        );
        let text = format!("{}", out.program);
        // Constant in the free (second) position of the bf adornment.
        assert!(text.contains("t_bf(X, 7) :- mark(X)."), "{text}");
        // Constant in the bound (first) position.
        assert!(text.contains("t_bf(7, Y) :- source(Y)."), "{text}");
        // Ground program fact with constants in both positions.
        assert!(text.contains("t_bf(3, 7)."), "{text}");
    }

    #[test]
    fn head_constants_survive_under_free_bound_adornment() {
        // Same regression with the mirrored adornment (query binds the second
        // argument): the constant now sits in the free position of `fb`.
        let out = adorned(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(7, Y) :- source(Y).",
            "t(X, 4)",
        );
        let text = format!("{}", out.program);
        // The body occurrence t(X, W) reaches the ff adornment as well, so every rule
        // appears once per reachable adornment (fb and ff) — and the constant-headed
        // rule must appear in both.
        assert_eq!(out.program.len(), 6, "{text}");
        assert!(text.contains("t_fb(7, Y) :- source(Y)."), "{text}");
        assert!(text.contains("t_ff(7, Y) :- source(Y)."), "{text}");
    }

    #[test]
    fn pmem_standard_form_program_adorns_fb() {
        // Example 4.6 in standard form: pmem(X, L) with the query binding L.
        let out = adorned(
            "pmem(X, L) :- list(X, T, L), p(X).\n\
             pmem(X, L) :- pmem(X, T), list(H, T, L).",
            "pmem(X, 100)",
        );
        assert_eq!(out.query.atom.predicate.as_str(), "pmem_fb");
        let info = out.info(Symbol::intern("pmem_fb")).unwrap();
        assert_eq!(info.adornment, "fb");
        // The recursive call pmem(X, T): X free, T free... T is not yet bound because
        // list(H, T, L) comes after it in the body, so the reachable adornment set
        // includes pmem_ff as well.
        let pmem = Symbol::intern("pmem");
        let adornments: Vec<String> = out
            .adornments_of(pmem)
            .iter()
            .map(|i| i.adornment.clone())
            .collect();
        assert!(adornments.contains(&"fb".to_string()));
    }
}
