//! Randomized answer-equivalence checking.
//!
//! The factoring property is a statement over *all* EDBs; it cannot be verified by
//! evaluation, but it can be *refuted* by finding an EDB on which two programs give
//! different answers to the query. This module generates random EDBs and compares
//! query answers, which the test suite uses to cross-check the program transformations
//! (Magic ≡ original, factored ≡ Magic when the sufficient conditions hold) and to
//! reproduce the negative examples of the paper (Theorem 3.1, Example 4.3).
//!
//! The generator uses a small internal SplitMix64 PRNG so the crate stays within the
//! approved dependency set; benchmarks use the `rand` crate via `factorlog-workloads`.

use factorlog_datalog::ast::{Const, Program, Query};
use factorlog_datalog::eval::{seminaive_evaluate, EvalError, EvalOptions};
use factorlog_datalog::storage::Database;
use factorlog_datalog::symbol::Symbol;

/// A minimal SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A description of an EDB predicate for random generation.
#[derive(Clone, Debug)]
pub struct EdbSpec {
    /// Predicate name.
    pub predicate: Symbol,
    /// Arity.
    pub arity: usize,
    /// Number of tuples to generate (duplicates are merged, so the actual count may be
    /// lower).
    pub tuples: usize,
}

impl EdbSpec {
    /// Convenience constructor.
    pub fn new(predicate: &str, arity: usize, tuples: usize) -> EdbSpec {
        EdbSpec {
            predicate: Symbol::intern(predicate),
            arity,
            tuples,
        }
    }
}

/// Generate a random EDB over the integer domain `0..domain`.
pub fn random_edb(specs: &[EdbSpec], domain: u64, seed: u64) -> Database {
    let mut rng = SplitMix64::new(seed);
    let mut db = Database::new();
    let domain = domain.max(1);
    for spec in specs {
        db.ensure_relation(spec.predicate, spec.arity);
        for _ in 0..spec.tuples {
            let tuple: Vec<Const> = (0..spec.arity)
                .map(|_| Const::Int(rng.below(domain) as i64))
                .collect();
            db.add_fact(spec.predicate, &tuple);
        }
    }
    db
}

/// The answers two programs give to their respective queries over one EDB, when both
/// evaluations succeed.
pub fn answers_match(
    program_a: &Program,
    query_a: &Query,
    program_b: &Program,
    query_b: &Query,
    edb: &Database,
) -> Result<bool, EvalError> {
    let options = EvalOptions::default();
    let a = seminaive_evaluate(program_a, edb, &options)?;
    let b = seminaive_evaluate(program_b, edb, &options)?;
    Ok(a.answers(query_a) == b.answers(query_b))
}

/// A counterexample found by [`check_equivalence`]: an EDB on which the two programs
/// disagree, together with both answer sets.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The EDB on which the programs disagree.
    pub edb: Database,
    /// Answers of the first program.
    pub answers_a: Vec<Vec<Const>>,
    /// Answers of the second program.
    pub answers_b: Vec<Vec<Const>>,
    /// The trial index (useful to re-derive the seed).
    pub trial: usize,
}

/// Randomized equivalence check: evaluate both programs on `trials` random EDBs and
/// return the first counterexample, if any. Passing the check does not prove
/// equivalence (the property is over all EDBs) but failing it refutes equivalence.
#[allow(clippy::too_many_arguments)]
pub fn check_equivalence(
    program_a: &Program,
    query_a: &Query,
    program_b: &Program,
    query_b: &Query,
    specs: &[EdbSpec],
    domain: u64,
    trials: usize,
    seed: u64,
) -> Result<Option<CounterExample>, EvalError> {
    let options = EvalOptions::default();
    for trial in 0..trials {
        let edb = random_edb(specs, domain, seed.wrapping_add(trial as u64));
        let a = seminaive_evaluate(program_a, &edb, &options)?;
        let b = seminaive_evaluate(program_b, &edb, &options)?;
        let answers_a = a.answers(query_a);
        let answers_b = b.answers(query_b);
        if answers_a != answers_b {
            return Ok(Some(CounterExample {
                edb,
                answers_a,
                answers_b,
                trial,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::factor::factor_magic;
    use crate::magic::magic;
    use factorlog_datalog::parser::{parse_program, parse_query};

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..100 {
            assert!(c.below(7) < 7);
        }
    }

    #[test]
    fn random_edb_respects_specs() {
        let specs = [EdbSpec::new("e", 2, 50), EdbSpec::new("l", 1, 10)];
        let db = random_edb(&specs, 20, 7);
        assert!(db.count("e") <= 50 && db.count("e") > 10);
        assert!(db.count("l") <= 10);
        // Deterministic for a fixed seed.
        let db2 = random_edb(&specs, 20, 7);
        assert_eq!(format!("{db}"), format!("{db2}"));
        // Different seed, different data (overwhelmingly likely).
        let db3 = random_edb(&specs, 20, 8);
        assert_ne!(format!("{db}"), format!("{db3}"));
    }

    #[test]
    fn magic_is_equivalent_to_original_on_random_edbs() {
        let src = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(3, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let counterexample = check_equivalence(
            &program,
            &query,
            &magicp.program,
            &adorned.query,
            &[EdbSpec::new("e", 2, 30)],
            12,
            20,
            99,
        )
        .unwrap();
        assert!(counterexample.is_none(), "{counterexample:?}");
    }

    #[test]
    fn factored_magic_is_equivalent_for_a_selection_pushing_program() {
        let src = "t(X, Y) :- t(X, W), t(W, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   t(X, Y) :- t(X, W), e(W, Y).\n\
                   t(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(3, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let factored = factor_magic(&adorned, &magicp).unwrap();
        let counterexample = check_equivalence(
            &program,
            &query,
            &factored.program,
            &factored.query,
            &[EdbSpec::new("e", 2, 25)],
            10,
            15,
            2024,
        )
        .unwrap();
        assert!(counterexample.is_none(), "{counterexample:?}");
    }

    #[test]
    fn factoring_a_non_factorable_program_is_refuted() {
        // Example 4.3's program is not factorable; random EDBs quickly expose the
        // discrepancy between the Magic program and its factored version.
        let src = "p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
                   p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).\n\
                   p(X, Y) :- f(X, V), p(V, Y), r3(Y).\n\
                   p(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(1, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let factored = factor_magic(&adorned, &magicp).unwrap();
        let specs = [
            EdbSpec::new("e", 2, 12),
            EdbSpec::new("f", 2, 8),
            EdbSpec::new("c1", 2, 8),
            EdbSpec::new("c2", 2, 8),
            EdbSpec::new("l1", 1, 4),
            EdbSpec::new("l2", 1, 4),
            EdbSpec::new("r1", 1, 5),
            EdbSpec::new("r2", 1, 5),
            EdbSpec::new("r3", 1, 5),
        ];
        let counterexample = check_equivalence(
            &magicp.program,
            &adorned.query,
            &factored.program,
            &factored.query,
            &specs,
            6,
            60,
            7,
        )
        .unwrap();
        let ce = counterexample.expect("a counterexample must exist for Example 4.3");
        assert_ne!(ce.answers_a, ce.answers_b);
    }

    #[test]
    fn answers_match_smoke() {
        let p1 = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let p2 = parse_program("t(X, Y) :- e(Y, X).").unwrap().program;
        let q = parse_query("t(X, Y)").unwrap();
        let mut edb = Database::new();
        edb.add_fact("e", &[Const::Int(1), Const::Int(2)]);
        assert!(answers_match(&p1, &q, &p1, &q, &edb).unwrap());
        assert!(!answers_match(&p1, &q, &p2, &q, &edb).unwrap());
    }
}
