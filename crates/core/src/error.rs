//! Errors produced by the program transformations.

use std::fmt;

use factorlog_datalog::validate::ValidationError;

/// Errors from adornment, Magic Sets, factoring analysis, or the optimizer pipeline.
#[derive(Clone, Debug)]
pub enum TransformError {
    /// The input program failed static validation.
    Invalid(Vec<ValidationError>),
    /// The query predicate does not occur in the program.
    UnknownQueryPredicate {
        /// Name of the query predicate.
        predicate: String,
    },
    /// The query's arity does not match the program's use of the predicate.
    QueryArityMismatch {
        /// Name of the query predicate.
        predicate: String,
        /// Arity in the program.
        program_arity: usize,
        /// Arity in the query.
        query_arity: usize,
    },
    /// The analysis requires a *unit program* (§4.1): a single recursive IDB predicate
    /// with a single reachable adornment.
    NotUnitProgram {
        /// Why the program is not a unit program.
        reason: String,
    },
    /// The requested transformation does not apply to this program.
    NotApplicable {
        /// Which transformation.
        transformation: &'static str,
        /// Why it does not apply.
        reason: String,
    },
    /// An argument-position list was invalid (out of range, overlapping, or not a
    /// partition of the predicate's positions).
    BadArgumentSplit {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Invalid(errors) => {
                write!(f, "invalid program:")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            TransformError::UnknownQueryPredicate { predicate } => {
                write!(f, "query predicate {predicate} does not occur in the program")
            }
            TransformError::QueryArityMismatch {
                predicate,
                program_arity,
                query_arity,
            } => write!(
                f,
                "query uses {predicate} with arity {query_arity} but the program uses arity {program_arity}"
            ),
            TransformError::NotUnitProgram { reason } => {
                write!(f, "not a unit program: {reason}")
            }
            TransformError::NotApplicable {
                transformation,
                reason,
            } => write!(f, "{transformation} is not applicable: {reason}"),
            TransformError::BadArgumentSplit { reason } => {
                write!(f, "bad argument split: {reason}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl From<Vec<ValidationError>> for TransformError {
    fn from(value: Vec<ValidationError>) -> Self {
        TransformError::Invalid(value)
    }
}

/// Result alias for transformation functions.
pub type TransformResult<T> = Result<T, TransformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TransformError::UnknownQueryPredicate {
            predicate: "t".into(),
        };
        assert!(format!("{e}").contains('t'));
        let e = TransformError::NotUnitProgram {
            reason: "two recursive predicates".into(),
        };
        assert!(format!("{e}").contains("unit program"));
        let e = TransformError::QueryArityMismatch {
            predicate: "t".into(),
            program_arity: 2,
            query_arity: 3,
        };
        assert!(format!("{e}").contains("arity 3"));
        let e = TransformError::NotApplicable {
            transformation: "counting",
            reason: "left-linear rule present".into(),
        };
        assert!(format!("{e}").contains("counting"));
        let e = TransformError::BadArgumentSplit {
            reason: "position 5 out of range".into(),
        };
        assert!(format!("{e}").contains("position 5"));
    }
}
