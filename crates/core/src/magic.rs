//! The Magic Sets transformation (§2.1 of the paper; Bancilhon–Maier–Sagiv–Ullman 1986,
//! Beeri–Ramakrishnan 1987).
//!
//! Given an adorned program and query, produce a program whose semi-naive bottom-up
//! evaluation computes only facts relevant to the query: auxiliary *magic* predicates
//! hold the goals that a top-down evaluation would generate, and each original rule is
//! guarded by the magic predicate of its head so it only fires for relevant bindings.
//!
//! The output of this module is the `P^mg` the factoring theorems of §4 operate on
//! (Fig. 1 of the paper is exactly [`magic`] applied to the three-rule transitive
//! closure).

use factorlog_datalog::ast::{Atom, Program, Query, Rule, Term};
use factorlog_datalog::fx::FxHashMap;
use factorlog_datalog::symbol::Symbol;

use crate::adorn::AdornedProgram;
use crate::error::TransformResult;

/// The result of the Magic Sets transformation.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The transformed program: magic rules, the seed fact, and the guarded original
    /// rules.
    pub program: Program,
    /// The query (unchanged from the adorned query: answers are still read from the
    /// adorned query predicate).
    pub query: Query,
    /// Mapping from each adorned predicate to its magic predicate.
    pub magic_of: FxHashMap<Symbol, Symbol>,
    /// The seed fact asserted for the query's bound arguments.
    pub seed: Atom,
}

impl MagicProgram {
    /// The magic predicate of an adorned predicate, if one was generated.
    pub fn magic_predicate(&self, adorned: Symbol) -> Option<Symbol> {
        self.magic_of.get(&adorned).copied()
    }

    /// Is `predicate` one of the generated magic predicates?
    pub fn is_magic(&self, predicate: Symbol) -> bool {
        self.magic_of.values().any(|&m| m == predicate)
    }
}

/// Project an atom onto the bound positions of its adornment, renaming it to the magic
/// predicate.
fn magic_atom(atom: &Atom, bound_positions: &[usize], magic: Symbol) -> Atom {
    Atom::new(
        magic,
        bound_positions.iter().map(|&i| atom.terms[i]).collect(),
    )
}

/// Apply the Magic Sets transformation to an adorned program.
///
/// For every adorned rule `p^a(t̄) :- L1, ..., Ln.`:
///
/// * the *guarded rule* `p^a(t̄) :- m_p^a(t̄|bound), L1, ..., Ln.` is emitted, and
/// * for every adorned (IDB) body literal `Lj = q^b(s̄)`, the *magic rule*
///   `m_q^b(s̄|bound) :- m_p^a(t̄|bound), L1, ..., L(j-1).` is emitted.
///
/// Finally the *seed* `m_q0^a0(c̄).` is asserted for the query's constants. Predicates
/// whose adornment has no bound position get a zero-arity magic predicate, which is
/// harmless (its seed is immediately true).
pub fn magic(adorned: &AdornedProgram) -> TransformResult<MagicProgram> {
    let mut magic_of: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    let existing: std::collections::BTreeSet<&'static str> = adorned
        .program
        .all_predicates()
        .into_iter()
        .chain(adorned.original_predicates.iter().copied())
        .map(|p| p.as_str())
        .collect();
    for pred in adorned.adorned_predicates() {
        let mut name = format!("m_{}", pred.as_str());
        while existing.contains(name.as_str()) {
            name.push('_');
        }
        magic_of.insert(pred, Symbol::intern(&name));
    }

    let mut program = Program::new();

    // Seed for the query.
    let query_pred = adorned.query.atom.predicate;
    let seed = if let (Some(info), Some(&magic_pred)) =
        (adorned.info(query_pred), magic_of.get(&query_pred))
    {
        let seed = magic_atom(&adorned.query.atom, &info.bound_positions(), magic_pred);
        debug_assert!(seed.is_ground(), "query bound arguments are constants");
        program.push(Rule::fact(seed.clone()));
        seed
    } else {
        // Query on an EDB predicate: empty adorned program, nothing to do.
        return Ok(MagicProgram {
            program,
            query: adorned.query.clone(),
            magic_of,
            seed: adorned.query.atom.clone(),
        });
    };

    for rule in &adorned.program.rules {
        let head_info = adorned
            .info(rule.head.predicate)
            .expect("adorned rule heads are adorned predicates");
        let head_magic = magic_of[&rule.head.predicate];
        let head_guard = magic_atom(&rule.head, &head_info.bound_positions(), head_magic);

        // Magic rules for each adorned body literal.
        for (j, literal) in rule.body.iter().enumerate() {
            let Some(info) = adorned.info(literal.predicate) else {
                continue;
            };
            let literal_magic = magic_of[&literal.predicate];
            let magic_head = magic_atom(literal, &info.bound_positions(), literal_magic);
            let mut body = Vec::with_capacity(j + 1);
            body.push(head_guard.clone());
            body.extend(rule.body[..j].iter().cloned());
            program.push(Rule::new(magic_head, body));
        }

        // Guarded original rule.
        let mut body = Vec::with_capacity(rule.body.len() + 1);
        body.push(head_guard);
        body.extend(rule.body.iter().cloned());
        program.push(Rule::new(rule.head.clone(), body));
    }

    Ok(MagicProgram {
        program,
        query: adorned.query.clone(),
        magic_of,
        seed,
    })
}

/// Convenience: answers of the original query can be reconstructed from the adorned
/// query predicate in the magic program's model; this helper builds the query atom on
/// the *original* predicate from a row of the adorned predicate.
pub fn reconstruct_original_atom(adorned: &AdornedProgram, row: &[Term]) -> Option<Atom> {
    let info = adorned.info(adorned.query.atom.predicate)?;
    Some(Atom::new(info.original, row.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::storage::Database;

    fn magic_of(src: &str, query: &str) -> (MagicProgram, AdornedProgram) {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magic = magic(&adorned).unwrap();
        (magic, adorned)
    }

    const THREE_RULE_TC: &str = "t(X, Y) :- t(X, W), t(W, Y).\n\
                                 t(X, Y) :- e(X, W), t(W, Y).\n\
                                 t(X, Y) :- t(X, W), e(W, Y).\n\
                                 t(X, Y) :- e(X, Y).";

    #[test]
    fn reproduces_figure_1_of_the_paper() {
        // Fig. 1: P^mg for the three-rule transitive closure with query t(5, Y).
        let (magic, _) = magic_of(THREE_RULE_TC, "t(5, Y)");
        let text = format!("{}", magic.program);
        // Seed.
        assert!(text.contains("m_t_bf(5)."));
        // Magic rules (the paper's m_tbf(W) :- m_tbf(X), tbf(X, W). etc.).
        assert!(text.contains("m_t_bf(W) :- m_t_bf(X), t_bf(X, W)."));
        assert!(text.contains("m_t_bf(W) :- m_t_bf(X), e(X, W)."));
        // Guarded rules.
        assert!(text.contains("t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), t_bf(W, Y)."));
        assert!(text.contains("t_bf(X, Y) :- m_t_bf(X), e(X, W), t_bf(W, Y)."));
        assert!(text.contains("t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), e(W, Y)."));
        assert!(text.contains("t_bf(X, Y) :- m_t_bf(X), e(X, Y)."));
        // Rule count: 1 seed + 4 magic rules (one per adorned body literal: rules 1-3
        // contribute 2+1+1) + 4 guarded rules = 9.
        assert_eq!(magic.program.len(), 9);
        assert_eq!(magic.seed.predicate.as_str(), "m_t_bf");
        assert!(magic.is_magic(Symbol::intern("m_t_bf")));
        assert!(!magic.is_magic(Symbol::intern("t_bf")));
        assert_eq!(
            magic.magic_predicate(Symbol::intern("t_bf")),
            Some(Symbol::intern("m_t_bf"))
        );
    }

    #[test]
    fn magic_program_computes_the_same_answers_as_the_original() {
        let program = parse_program(THREE_RULE_TC).unwrap().program;
        let query = parse_query("t(5, Y)").unwrap();
        let (magic, adorned) = magic_of(THREE_RULE_TC, "t(5, Y)");

        let mut edb = Database::new();
        for (a, b) in [(5, 6), (6, 7), (7, 8), (1, 2), (2, 3), (8, 5)] {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let transformed = evaluate_default(&magic.program, &edb).unwrap();
        assert_eq!(
            original.answers(&query),
            transformed.answers(&adorned.query),
            "magic program must preserve the query answers"
        );
    }

    #[test]
    fn magic_program_restricts_computation_to_relevant_facts() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let query = parse_query("t(0, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();

        // Two disjoint chains; only the one containing node 0 is relevant.
        let mut edb = Database::new();
        for i in 0..50i64 {
            edb.add_fact("e", &[Const::Int(i), Const::Int(i + 1)]);
            edb.add_fact("e", &[Const::Int(1000 + i), Const::Int(1001 + i)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let transformed = evaluate_default(&magicp.program, &edb).unwrap();
        assert_eq!(
            original.answers(&query),
            transformed.answers(&adorned.query)
        );
        // The original computes the closure of both chains (t has ~2 * 50*51/2 facts);
        // the magic program only computes tuples with first component reachable from 0.
        let t_all = original.database.count("t");
        let t_magic = transformed.database.count("t_bf");
        assert!(
            t_magic * 2 <= t_all,
            "magic must skip the irrelevant chain: {t_magic} vs {t_all}"
        );
    }

    #[test]
    fn right_linear_rule_generates_shifting_magic_rule() {
        let (magic, _) = magic_of(
            "p(X, Y) :- f(X, V), p(V, Y), r(Y).\np(X, Y) :- e(X, Y).",
            "p(1, Y)",
        );
        let text = format!("{}", magic.program);
        assert!(text.contains("m_p_bf(V) :- m_p_bf(X), f(X, V)."));
        assert!(text.contains("p_bf(X, Y) :- m_p_bf(X), f(X, V), p_bf(V, Y), r(Y)."));
        assert!(text.contains("m_p_bf(1)."));
    }

    #[test]
    fn all_free_query_gets_zero_arity_magic_seed() {
        let (magic, adorned) = magic_of(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
            "t(X, Y)",
        );
        assert_eq!(magic.seed.arity(), 0);
        // Still computes correct answers.
        let mut edb = Database::new();
        edb.add_fact("e", &[Const::Int(1), Const::Int(2)]);
        edb.add_fact("e", &[Const::Int(2), Const::Int(3)]);
        let transformed = evaluate_default(&magic.program, &edb).unwrap();
        assert_eq!(transformed.answers(&adorned.query).len(), 3);
    }

    #[test]
    fn same_generation_magic_matches_original() {
        let src = "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("sg(1, Y)").unwrap();
        let (magicp, adorned) = magic_of(src, "sg(1, Y)");
        let mut edb = Database::new();
        for (a, b) in [(1, 11), (1, 12), (2, 21)] {
            edb.add_fact("up", &[Const::Int(a), Const::Int(b)]);
        }
        for (a, b) in [(11, 12), (12, 13), (21, 22)] {
            edb.add_fact("flat", &[Const::Int(a), Const::Int(b)]);
        }
        for (a, b) in [(12, 2), (13, 3), (22, 2)] {
            edb.add_fact("down", &[Const::Int(a), Const::Int(b)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let transformed = evaluate_default(&magicp.program, &edb).unwrap();
        assert_eq!(
            original.answers(&query),
            transformed.answers(&adorned.query)
        );
    }

    #[test]
    fn magic_names_avoid_collisions() {
        let (magic, _) = magic_of(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nm_t_bf(A) :- e(A, A).",
            "t(5, Y)",
        );
        // The generated magic predicate must not collide with the user's m_t_bf.
        assert!(magic.seed.predicate.as_str().starts_with("m_t_bf_"));
    }
}
