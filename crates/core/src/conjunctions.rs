//! The auxiliary conjunctive queries of Definition 4.5: `bound-exit`, `free-exit`,
//! `bound-first`, `free-last`, `bound`, `free`, and `middle`.
//!
//! Each is built from the conjunctions identified by rule classification
//! ([`crate::classify`]) and is represented as a
//! [`ConjunctiveQuery`](factorlog_datalog::cq::ConjunctiveQuery) so that the
//! factorability conditions (Definitions 4.6–4.8) can be decided with the
//! Chandra–Merlin containment test. `equal/2` atoms introduced by standard-form
//! conversion are eliminated by substitution before the queries are returned.

use factorlog_datalog::ast::{Atom, Term};
use factorlog_datalog::cq::ConjunctiveQuery;
use factorlog_datalog::symbol::Symbol;

use crate::classify::ClassifiedRule;

fn build(head_vars: &[Symbol], body: &[Atom]) -> ConjunctiveQuery {
    let mut cq = ConjunctiveQuery::new(
        head_vars.iter().map(|&v| Term::Var(v)).collect(),
        body.to_vec(),
    );
    cq.normalize_equalities();
    cq
}

/// `bound-exit(X̄) :- exit(X̄, Ȳ).` — defined for exit rules.
pub fn bound_exit(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_bound, &rule.exit_conj)
}

/// `free-exit(Ȳ) :- exit(X̄, Ȳ).` — defined for exit rules.
pub fn free_exit(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_free, &rule.exit_conj)
}

/// `bound(X̄) :- left(X̄).` — defined for left-linear and combined rules.
pub fn bound(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_bound, &rule.left_conj)
}

/// `free(Ȳ) :- right(Ȳ).` — defined for right-linear and combined rules.
pub fn free(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_free, &rule.right_conj)
}

/// `bound-first(X̄) :- first(X̄, V̄).` — defined for right-linear rules.
pub fn bound_first(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_bound, &rule.first_conj)
}

/// `free-last(Ȳ) :- last(Ū.., Ȳ).` — defined for left-linear rules.
pub fn free_last(rule: &ClassifiedRule) -> ConjunctiveQuery {
    build(&rule.head_free, &rule.last_conj)
}

/// `middle(Ū, V̄) :- center(Ū, V̄).` — defined for combined rules. The head is the
/// concatenation of the free-position variables of the left-linear occurrences (in
/// body order) followed by the bound-position variables of the right-linear
/// occurrence.
pub fn middle(rule: &ClassifiedRule) -> ConjunctiveQuery {
    let head: Vec<Symbol> = rule
        .u_vars
        .iter()
        .chain(rule.v_vars.iter())
        .copied()
        .collect();
    build(&head, &rule.center_conj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::classify;
    use factorlog_datalog::parser::{parse_program, parse_query};

    fn classified(src: &str, query: &str) -> crate::classify::ProgramClassification {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        classify(&adorn(&program, &query).unwrap()).unwrap()
    }

    #[test]
    fn three_rule_tc_conjunctions() {
        let c = classified(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t(X, W), e(W, Y).\n\
             t(X, Y) :- e(X, Y).",
            "t(5, Y)",
        );
        // Exit rule: bound_exit(X) :- e(X, Y); free_exit(Y) :- e(X, Y).
        let exit = &c.rules[3];
        assert_eq!(format!("{}", bound_exit(exit)), "(X) :- e(X, Y)");
        assert_eq!(format!("{}", free_exit(exit)), "(Y) :- e(X, Y)");
        // Combined rule: all of left/center/right are empty, so bound/free/middle are
        // universal queries.
        let combined = &c.rules[0];
        assert!(bound(combined).is_universal());
        assert!(free(combined).is_universal());
        assert!(middle(combined).is_universal());
        assert_eq!(middle(combined).arity(), 2);
        // Right-linear rule: bound_first(X) :- e(X, W); free universal.
        let right = &c.rules[1];
        assert_eq!(format!("{}", bound_first(right)), "(X) :- e(X, W)");
        assert!(free(right).is_universal());
        // Left-linear rule: free_last(Y) :- e(W, Y); bound universal.
        let left = &c.rules[2];
        assert_eq!(format!("{}", free_last(left)), "(Y) :- e(W, Y)");
        assert!(bound(left).is_universal());
    }

    #[test]
    fn example_4_3_conjunctions() {
        let c = classified(
            "p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
             p(X, Y) :- f(X, V), p(V, Y), r3(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        let combined = &c.rules[0];
        assert_eq!(format!("{}", bound(combined)), "(X) :- l1(X)");
        assert_eq!(format!("{}", free(combined)), "(Y) :- r1(Y)");
        assert_eq!(format!("{}", middle(combined)), "(U, V) :- c1(U, V)");
        let right = &c.rules[1];
        assert_eq!(format!("{}", bound_first(right)), "(X) :- f(X, V)");
        assert_eq!(format!("{}", free(right)), "(Y) :- r3(Y)");
        let exit = &c.rules[2];
        assert_eq!(format!("{}", free_exit(exit)), "(Y) :- e(X, Y)");
    }

    #[test]
    fn containment_checks_between_conjunctions() {
        // Exit rule carries the right restrictions, so free_exit ⊆ free holds.
        let c = classified(
            "p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).\n\
             p(X, Y) :- e(X, Y), r1(Y).",
            "p(5, Y)",
        );
        let combined = &c.rules[0];
        let exit = &c.rules[1];
        assert!(free_exit(exit).is_contained_in(&free(combined)));
        assert!(!free(combined).is_contained_in(&free_exit(exit)));
        assert!(!bound_exit(exit).is_contained_in(&bound(combined)));
    }

    #[test]
    fn middle_with_multiple_left_occurrences() {
        let c = classified(
            "p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).\n\
             p(X, Y) :- e(X, Y).",
            "p(5, Y)",
        );
        let combined = &c.rules[0];
        let m = middle(combined);
        assert_eq!(
            m.arity(),
            3,
            "U, V from the left occurrences plus W from the right"
        );
        assert_eq!(format!("{m}"), "(U, V, W) :- c(U, V, W)");
    }

    #[test]
    fn equalities_from_standard_form_are_normalized() {
        // Exit rule p(X, X): in standard form the head is p(X, _sf1) with
        // equal(_sf1, X); free_exit is then (X) :- n(X) after substitution.
        let c = classified("p(X, Y) :- p(X, W), e(W, Y).\np(X, X) :- n(X).", "p(5, Y)");
        let exit = &c.rules[1];
        let fe = free_exit(exit);
        assert_eq!(fe.arity(), 1);
        assert!(!fe.is_universal());
        assert_eq!(format!("{fe}"), "(X) :- n(X)");
    }
}
