//! `factorlog-core`: the program transformations of *Argument Reduction by Factoring*
//! (J.F. Naughton, R. Ramakrishnan, Y. Sagiv, J.D. Ullman; VLDB 1989 / TCS 146, 1995).
//!
//! The crate implements the paper's two-step optimization — **Magic Sets followed by
//! factoring** — together with everything needed to decide when it applies and to
//! clean up the result:
//!
//! | Module | Paper section |
//! |--------|---------------|
//! | [`adorn`] | adornment, §2.1/§4.1 |
//! | [`magic`] | the Magic Sets transformation, §2.1 (Fig. 1) |
//! | [`standard_form`] | standard form, §4.1 |
//! | [`classify`] | exit/left-linear/right-linear/combined rules, Defs 4.1–4.4 |
//! | [`conjunctions`] | the `bound`/`free`/… conjunctive queries, Def 4.5 |
//! | [`conditions`] | selection-pushing / symmetric / answer-propagating, Defs 4.6–4.8, Thms 4.1–4.3 |
//! | [`factor`] | the factoring transformation, §3 / Prop 3.1 (Fig. 2) |
//! | [`optimize`] | the §5 simplifications, Props 5.1–5.5 + uniform equivalence |
//! | [`reduce`] | static-argument reduction, Defs 5.1–5.3, Lemmas 5.1–5.2 |
//! | [`counting`] | the Counting transformation, §6.4, Thm 6.4 |
//! | [`one_sided`] | one-sided recursions, §6.1, Thms 6.1–6.2 |
//! | [`separable`] | separable recursions, §6.2, Thm 6.3 |
//! | [`pipeline`] | the end-to-end optimizer |
//! | [`equivalence`] | randomized answer-equivalence checking |
//!
//! # Quick example
//!
//! ```
//! use factorlog_datalog::parser::{parse_program, parse_query};
//! use factorlog_datalog::storage::Database;
//! use factorlog_datalog::ast::Const;
//! use factorlog_core::pipeline::{optimize_query, PipelineOptions, Strategy};
//!
//! // Example 1.1 of the paper: transitive closure with all three recursive rules.
//! let program = parse_program(
//!     "t(X, Y) :- t(X, W), t(W, Y).\n\
//!      t(X, Y) :- e(X, W), t(W, Y).\n\
//!      t(X, Y) :- t(X, W), e(W, Y).\n\
//!      t(X, Y) :- e(X, Y).",
//! ).unwrap().program;
//! let query = parse_query("t(5, Y)").unwrap();
//!
//! let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
//! assert_eq!(optimized.strategy, Strategy::FactoredMagic);
//!
//! let mut edb = Database::new();
//! for i in 5..9i64 {
//!     edb.add_fact("e", &[Const::Int(i), Const::Int(i + 1)]);
//! }
//! assert_eq!(optimized.answers(&edb).unwrap().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adorn;
pub mod classify;
pub mod conditions;
pub mod conjunctions;
pub mod counting;
pub mod equivalence;
pub mod error;
pub mod factor;
pub mod magic;
pub mod one_sided;
pub mod optimize;
pub mod pipeline;
pub mod reduce;
pub mod separable;
pub mod standard_form;

pub use adorn::{adorn, AdornedProgram};
pub use classify::{classify, ProgramClassification, RuleClass};
pub use conditions::{analyze, FactorabilityReport, FactorableClass};
pub use counting::{counting, CountingProgram};
pub use error::{TransformError, TransformResult};
pub use factor::{factor_magic, factor_predicate, FactoredProgram};
pub use magic::{magic, MagicProgram};
pub use optimize::{optimize, FactoringContext, OptimizeOptions};
pub use pipeline::{optimize_query, Optimized, PipelineOptions, Strategy};
pub use reduce::{reduce, ReducedProgram};
