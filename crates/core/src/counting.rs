//! The Counting transformation (§6.4 of the paper; Bancilhon et al. 1986, Saccà &
//! Zaniolo 1986), restricted — as in the paper's comparison — to programs whose
//! recursive rules are all right-linear.
//!
//! Counting augments the magic (goal) predicate with a derivation-depth index and the
//! answer predicate with the same index, so that answers can be matched back to the
//! goal depth they answer; the original query's answers are the tuples with index 0.
//! The index is pure overhead whenever the Magic program is factorable: Theorem 6.4
//! shows that for right-linear factorable programs the factored Magic program equals
//! the Counting program with the index fields deleted. For programs with left-linear
//! or combined rules Counting does not terminate (the index grows forever), which is
//! why [`counting`] refuses them with an error rather than generating a divergent
//! program.
//!
//! The generated programs use the engine's `succ/2` builtin for the `I + 1` arithmetic.

use factorlog_datalog::ast::{Atom, Program, Query, Rule, Term};
use factorlog_datalog::eval::join::succ_symbol;
use factorlog_datalog::symbol::Symbol;

use crate::adorn::AdornedProgram;
use crate::classify::{ProgramClassification, RuleClass};
use crate::error::{TransformError, TransformResult};

/// The result of the Counting transformation.
#[derive(Clone, Debug)]
pub struct CountingProgram {
    /// The transformed program.
    pub program: Program,
    /// The query on the indexed answer predicate (index fixed to 0).
    pub query: Query,
    /// The indexed goal predicate (`cnt_p`).
    pub count_predicate: Symbol,
    /// The indexed answer predicate (`p_cnt`).
    pub answer_predicate: Symbol,
    /// The unary predicate holding the derivation depths actually generated; it guards
    /// the answer-propagation rules so the index never leaves the goal-depth range in a
    /// bottom-up evaluation.
    pub depth_predicate: Symbol,
}

/// Apply the Counting transformation to a right-linear adorned program.
pub fn counting(
    adorned: &AdornedProgram,
    classification: &ProgramClassification,
) -> TransformResult<CountingProgram> {
    // Applicability: every recursive rule must be right-linear.
    for rule in classification.recursive_rules() {
        if rule.class != RuleClass::RightLinear {
            return Err(TransformError::NotApplicable {
                transformation: "counting",
                reason: format!(
                    "rule {} is {:?}; Counting diverges unless every recursive rule is right-linear (§6.4)",
                    rule.rule_index, rule.class
                ),
            });
        }
    }
    if classification.exit_rules().count() == 0 {
        return Err(TransformError::NotApplicable {
            transformation: "counting",
            reason: "the program has no exit rule".to_string(),
        });
    }
    if classification.bound_positions.is_empty() {
        return Err(TransformError::NotApplicable {
            transformation: "counting",
            reason: "the query binds no argument, so there are no goals to index".to_string(),
        });
    }

    let predicate = classification.predicate;
    let existing: std::collections::BTreeSet<&'static str> = adorned
        .program
        .all_predicates()
        .into_iter()
        .chain(adorned.original_predicates.iter().copied())
        .map(|p| p.as_str())
        .collect();
    let mint = |prefix: &str| {
        let mut name = format!("{}{}", prefix, predicate.as_str());
        while existing.contains(name.as_str()) {
            name.push('_');
        }
        Symbol::intern(&name)
    };
    let count_predicate = mint("cnt_");
    let answer_predicate = mint("ans_");
    let depth_predicate = mint("cntd_");

    let mut program = Program::new();

    // Seed: cnt_p(c̄, 0) for the query constants.
    let mut seed_terms: Vec<Term> = classification
        .bound_positions
        .iter()
        .map(|&i| adorned.query.atom.terms[i])
        .collect();
    seed_terms.push(Term::int(0));
    program.push(Rule::fact(Atom::new(count_predicate, seed_terms)));

    // Index variables, fresh with respect to all rules of the program.
    let index_var = Term::Var(Symbol::intern("_CntI"));
    let next_index_var = Term::Var(Symbol::intern("_CntI1"));

    // Depth projection: cntd_p(I) :- cnt_p(X̄, I). Guarding the answer rules with it
    // keeps the index within the depths actually generated (a bottom-up evaluation of
    // the bare answer rule would otherwise decrement the index without bound).
    {
        let depth_body_args: Vec<Term> = classification
            .bound_positions
            .iter()
            .enumerate()
            .map(|(k, _)| Term::Var(Symbol::intern(&format!("_CntB{k}"))))
            .chain(std::iter::once(index_var))
            .collect();
        program.push(Rule::new(
            Atom::new(depth_predicate, vec![index_var]),
            vec![Atom::new(count_predicate, depth_body_args)],
        ));
    }

    for rule in &classification.rules {
        match rule.class {
            RuleClass::RightLinear => {
                let occurrence = rule.right_occurrence.expect("right-linear rules have one");
                let body_occurrence = &rule.rule.body[occurrence];

                // Goal rule: cnt_p(V̄, I+1) :- cnt_p(X̄, I), first(X̄, V̄), succ(I, I+1).
                let mut goal_head: Vec<Term> = classification
                    .bound_positions
                    .iter()
                    .map(|&i| body_occurrence.terms[i])
                    .collect();
                goal_head.push(next_index_var);
                let mut goal_body = Vec::new();
                let mut count_args: Vec<Term> = classification
                    .bound_positions
                    .iter()
                    .map(|&i| rule.rule.head.terms[i])
                    .collect();
                count_args.push(index_var);
                goal_body.push(Atom::new(count_predicate, count_args));
                goal_body.extend(rule.first_conj.iter().cloned());
                goal_body.push(Atom::new(succ_symbol(), vec![index_var, next_index_var]));
                program.push(Rule::new(Atom::new(count_predicate, goal_head), goal_body));

                // Answer rule: ans_p(Ȳ, I) :- ans_p(Ȳ, I+1), succ(I, I+1), right(Ȳ).
                let mut answer_head: Vec<Term> = classification
                    .free_positions
                    .iter()
                    .map(|&i| rule.rule.head.terms[i])
                    .collect();
                answer_head.push(index_var);
                let mut deeper_args: Vec<Term> = classification
                    .free_positions
                    .iter()
                    .map(|&i| body_occurrence.terms[i])
                    .collect();
                deeper_args.push(next_index_var);
                let mut answer_body = vec![Atom::new(answer_predicate, deeper_args)];
                answer_body.push(Atom::new(succ_symbol(), vec![index_var, next_index_var]));
                answer_body.push(Atom::new(depth_predicate, vec![index_var]));
                answer_body.extend(rule.right_conj.iter().cloned());
                program.push(Rule::new(
                    Atom::new(answer_predicate, answer_head),
                    answer_body,
                ));
            }
            RuleClass::Exit => {
                // ans_p(Ȳ, I) :- cnt_p(X̄, I), exit(X̄, Ȳ).
                let mut answer_head: Vec<Term> = classification
                    .free_positions
                    .iter()
                    .map(|&i| rule.rule.head.terms[i])
                    .collect();
                answer_head.push(index_var);
                let mut count_args: Vec<Term> = classification
                    .bound_positions
                    .iter()
                    .map(|&i| rule.rule.head.terms[i])
                    .collect();
                count_args.push(index_var);
                let mut body = vec![Atom::new(count_predicate, count_args)];
                body.extend(rule.exit_conj.iter().cloned());
                program.push(Rule::new(Atom::new(answer_predicate, answer_head), body));
            }
            _ => unreachable!("checked above"),
        }
    }

    // Query: ans_p(Ȳ, 0) with the adorned query's free terms.
    let mut query_terms: Vec<Term> = classification
        .free_positions
        .iter()
        .map(|&i| adorned.query.atom.terms[i])
        .collect();
    query_terms.push(Term::int(0));
    let query = Query::new(Atom::new(answer_predicate, query_terms));

    Ok(CountingProgram {
        program,
        query,
        count_predicate,
        answer_predicate,
        depth_predicate,
    })
}

/// Delete the index fields from a Counting program (§6.4): drop the last argument of
/// the count and answer predicates and remove the `succ` atoms. Theorem 6.4 states
/// that for right-linear factorable programs the result coincides (up to predicate
/// names and trivially redundant rules) with the factored Magic program.
pub fn delete_index_fields(counting: &CountingProgram) -> Program {
    let strip = |atom: &Atom| -> Atom {
        if atom.predicate == counting.count_predicate || atom.predicate == counting.answer_predicate
        {
            let mut terms = atom.terms.clone();
            terms.pop();
            Atom::new(atom.predicate, terms)
        } else {
            atom.clone()
        }
    };
    let rules = counting
        .program
        .rules
        .iter()
        .filter(|rule| rule.head.predicate != counting.depth_predicate)
        .map(|rule| {
            let head = strip(&rule.head);
            let body = rule
                .body
                .iter()
                .filter(|a| a.predicate != succ_symbol() && a.predicate != counting.depth_predicate)
                .map(strip)
                .collect();
            Rule::new(head, body)
        })
        .collect();
    Program::from_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adorn::adorn;
    use crate::classify::classify;
    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::{evaluate_default, seminaive_evaluate, EvalOptions};
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::storage::Database;

    const RIGHT_LINEAR: &str = "p(X, Y) :- first1(X, U), p(U, Y), right1(Y).\n\
                                p(X, Y) :- first2(X, U), p(U, Y), right2(Y).\n\
                                p(X, Y) :- exit(X, Y).";

    fn build(src: &str, query: &str) -> (AdornedProgram, CountingProgram) {
        let program = parse_program(src).unwrap().program;
        let query = parse_query(query).unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let classification = classify(&adorned).unwrap();
        let cnt = counting(&adorned, &classification).unwrap();
        (adorned, cnt)
    }

    #[test]
    fn generates_the_rules_of_section_6_4() {
        let (_, cnt) = build(RIGHT_LINEAR, "p(5, Y)");
        let text = format!("{}", cnt.program);
        assert!(text.contains("cnt_p_bf(5, 0)."), "{text}");
        assert!(text.contains(
            "cnt_p_bf(U, _CntI1) :- cnt_p_bf(X, _CntI), first1(X, U), succ(_CntI, _CntI1)."
        ));
        assert!(text.contains(
            "ans_p_bf(Y, _CntI) :- ans_p_bf(Y, _CntI1), succ(_CntI, _CntI1), cntd_p_bf(_CntI), right1(Y)."
        ));
        assert!(text.contains("ans_p_bf(Y, _CntI) :- cnt_p_bf(X, _CntI), exit(X, Y)."));
        assert!(text.contains("cntd_p_bf(_CntI) :- cnt_p_bf(_CntB0, _CntI)."));
        assert_eq!(format!("{}", cnt.query), "?- ans_p_bf(Y, 0).");
    }

    #[test]
    fn counting_computes_the_original_answers() {
        let program = parse_program(RIGHT_LINEAR).unwrap().program;
        let query = parse_query("p(5, Y)").unwrap();
        let (_, cnt) = build(RIGHT_LINEAR, "p(5, Y)");

        let mut edb = Database::new();
        // A small layered instance: goals 5 -> 6 -> 7 via first1/first2; exits at each.
        edb.add_fact("first1", &[Const::Int(5), Const::Int(6)]);
        edb.add_fact("first2", &[Const::Int(6), Const::Int(7)]);
        for (a, b) in [(5, 50), (6, 60), (7, 70)] {
            edb.add_fact("exit", &[Const::Int(a), Const::Int(b)]);
        }
        // right restrictions admit every exit value reached through them.
        for v in [60, 70] {
            edb.add_fact("right1", &[Const::Int(v)]);
            edb.add_fact("right2", &[Const::Int(v)]);
        }

        let original = evaluate_default(&program, &edb).unwrap();
        let counted = evaluate_default(&cnt.program, &edb).unwrap();
        assert_eq!(original.answers(&query), counted.answers(&cnt.query));
        assert_eq!(
            original.answers(&query),
            vec![
                vec![Const::Int(50)],
                vec![Const::Int(60)],
                vec![Const::Int(70)]
            ]
        );
    }

    #[test]
    fn counting_matches_magic_on_the_simple_transitive_closure() {
        let src = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(0, Y)").unwrap();
        let (_, cnt) = build(src, "t(0, Y)");
        let mut edb = Database::new();
        for i in 0..12i64 {
            edb.add_fact("e", &[Const::Int(i), Const::Int(i + 1)]);
        }
        let original = evaluate_default(&program, &edb).unwrap();
        let counted = evaluate_default(&cnt.program, &edb).unwrap();
        assert_eq!(original.answers(&query), counted.answers(&cnt.query));
    }

    #[test]
    fn counting_diverges_on_cyclic_data_but_is_caught_by_the_iteration_limit() {
        // The classic caveat: with a cycle in the data the index grows without bound.
        let src = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).";
        let (_, cnt) = build(src, "t(0, Y)");
        let mut edb = Database::new();
        for i in 0..4i64 {
            edb.add_fact("e", &[Const::Int(i), Const::Int((i + 1) % 4)]);
        }
        let options = EvalOptions {
            max_iterations: 200,
            ..EvalOptions::default()
        };
        assert!(seminaive_evaluate(&cnt.program, &edb, &options).is_err());
    }

    #[test]
    fn left_linear_programs_are_refused() {
        let src = "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(0, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let classification = classify(&adorned).unwrap();
        let err = counting(&adorned, &classification).unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable { .. }));
        assert!(format!("{err}").contains("right-linear"));
    }

    #[test]
    fn all_free_queries_are_refused() {
        // A non-recursive program keeps a single (all-free) adornment; Counting has no
        // bound arguments to index and refuses.
        let src = "t(X, Y) :- e(X, Y).";
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(X, Y)").unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let classification = classify(&adorned).unwrap();
        assert!(counting(&adorned, &classification).is_err());
    }

    #[test]
    fn deleting_index_fields_gives_the_factored_shape() {
        // Theorem 6.4: dropping the index fields yields (up to naming and trivially
        // redundant rules) the factored Magic program. We check the structural
        // consequence: same answers, and the recursive answer rules become
        // head-in-body-redundant.
        let (_adorned, cnt) = build(RIGHT_LINEAR, "p(5, Y)");
        let stripped = delete_index_fields(&cnt);
        let text = format!("{stripped}");
        assert!(text.contains("cnt_p_bf(5)."));
        assert!(text.contains("cnt_p_bf(U) :- cnt_p_bf(X), first1(X, U)."));
        assert!(text.contains("ans_p_bf(Y) :- ans_p_bf(Y), right1(Y)."));
        assert!(text.contains("ans_p_bf(Y) :- cnt_p_bf(X), exit(X, Y)."));
        // The recursive answer rules have their head in the body and therefore derive
        // nothing; after removing them the program is exactly the optimized factored
        // Magic program modulo predicate names (magic ↔ cnt, fp ↔ ans).
        let query = parse_query("ans_p_bf(Y)").unwrap();
        let mut edb = Database::new();
        edb.add_fact("first1", &[Const::Int(5), Const::Int(6)]);
        edb.add_fact("exit", &[Const::Int(6), Const::Int(60)]);
        edb.add_fact("exit", &[Const::Int(5), Const::Int(50)]);
        edb.add_fact("right1", &[Const::Int(60)]);
        let stripped_result = evaluate_default(&stripped, &edb).unwrap();
        let counted_result = evaluate_default(&cnt.program, &edb).unwrap();
        assert_eq!(
            stripped_result.answers(&query),
            counted_result.answers(&cnt.query)
        );
    }
}
