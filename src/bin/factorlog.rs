//! `factorlog` — command-line front end: load a Datalog file (rules, facts and a
//! `?- query.`), optimize the query with Magic Sets + factoring, evaluate it, and
//! print the answers. Or start a persistent interactive session with `factorlog repl`.
//!
//! ```text
//! USAGE:
//!     factorlog <FILE> [--query "t(0, Y)"] [--strategy original|magic|factored]
//!               [--show-program] [--explain] [--stats]
//!     factorlog repl [FILE] [--data-dir DIR] [--metrics-json PATH]
//!     factorlog serve [FILE] [--data-dir DIR] [--addr HOST:PORT]
//!               [--max-in-flight N] [--deadline-ms N]
//!               [--follow HOST:PORT] [--lease-ms N]
//!
//! OPTIONS:
//!     --query <ATOM>       query literal (overrides any ?- clause in the file)
//!     --strategy <NAME>    evaluation strategy (default: factored — i.e. the pipeline)
//!     --show-program       print the program that is evaluated
//!     --explain            print the full stage-by-stage optimization report
//!     --stats              print cumulative session evaluation statistics
//!
//! REPL MODE:
//!     an incremental engine session: `:load` (Datalog source or a `:save`d
//!     snapshot), `:save file`, `:insert fact.`, `:retract fact.`,
//!     `:begin`/`:commit`/`:abort` transactions, `:prepare q`, `?- query.`,
//!     `:stats`, `:profile`, `:metrics`, `:help`, `:quit`. An optional FILE is
//!     loaded at start.
//!     `--data-dir DIR` makes the session durable: committed mutations append to
//!     an fsync'd write-ahead log in DIR, the state recovers on the next start
//!     (even after SIGKILL), and the log compacts into a snapshot as it grows.
//!     `--metrics-json PATH` enables tracing for the whole session and writes the
//!     versioned metrics JSON document to PATH when the session ends.
//!
//! SERVE MODE:
//!     a concurrent multi-session server on the same engine: any number of
//!     connections speak the line protocol (QUERY/TXN/PING/EPOCH/STATS/QUIT),
//!     readers answer lock-free from an atomically swapped materialized view,
//!     and concurrently submitted transactions group-commit under one WAL
//!     fsync. `--max-in-flight N` bounds admission (excess requests are shed
//!     with a retryable `ERR overloaded`), `--deadline-ms N` sets the
//!     per-request deadline. SIGTERM or Ctrl-C shuts down gracefully: drain,
//!     cancel stragglers, flush the WAL. An in-REPL session connects with
//!     `:connect HOST:PORT`.
//!     `--follow HOST:PORT` starts the node as a *read replica* of a served
//!     leader instead (requires `--data-dir`): it streams committed WAL frames
//!     from the leader, answers queries from the replicated state, refuses
//!     transactions with `ERR readonly`, and accepts `PROMOTE` once the
//!     leader's lease (`--lease-ms`, default 750) has expired.
//! ```
//!
//! One-shot runs execute on the same [`Engine`] the REPL uses, so `--stats` reports
//! the session's cumulative counters (materialization + prepared-plan replays +
//! cache hits/misses), not a single call's.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use factorlog::prelude::*;

/// Which program the CLI evaluates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum CliStrategy {
    /// The program as written, evaluated semi-naively.
    Original,
    /// The Magic Sets rewriting only.
    Magic,
    /// The full pipeline: Magic + factoring (when applicable) + the §5 optimizations.
    Factored,
}

#[derive(Debug)]
struct CliOptions {
    file: String,
    query: Option<String>,
    strategy: CliStrategy,
    show_program: bool,
    explain: bool,
    stats: bool,
}

fn usage() -> String {
    "usage: factorlog <FILE> [--query \"t(0, Y)\"] [--strategy original|magic|factored] \
     [--show-program] [--explain] [--stats]\n       factorlog repl [FILE] [--data-dir DIR] \
     [--metrics-json PATH]\n       factorlog serve [FILE] [--data-dir DIR] [--addr HOST:PORT] \
     [--max-in-flight N] [--deadline-ms N] [--follow HOST:PORT] [--lease-ms N]"
        .to_string()
}

/// Arguments of `factorlog repl ...`.
#[derive(Debug, Default, PartialEq, Eq)]
struct ReplOptions {
    /// Datalog source (or snapshot) loaded into the session at start.
    file: Option<String>,
    /// Data directory of a durable session (write-ahead log + snapshot).
    data_dir: Option<String>,
    /// When set, tracing is on for the whole session and the metrics JSON
    /// document is written here when the session ends.
    metrics_json: Option<String>,
}

fn parse_repl_args(args: &[String]) -> Result<ReplOptions, String> {
    let mut options = ReplOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--data-dir" => {
                options.data_dir = Some(
                    iter.next()
                        .ok_or_else(|| "--data-dir requires a directory argument".to_string())?
                        .clone(),
                );
            }
            "--metrics-json" => {
                options.metrics_json = Some(
                    iter.next()
                        .ok_or_else(|| "--metrics-json requires a file argument".to_string())?
                        .clone(),
                );
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--") => {
                return Err(format!("unknown repl option `{other}`\n{}", usage()));
            }
            other => {
                if options.file.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                options.file = Some(other.to_string());
            }
        }
    }
    Ok(options)
}

/// Arguments of `factorlog serve ...`.
#[derive(Debug, PartialEq, Eq)]
struct ServeCliOptions {
    /// Datalog source (or snapshot) loaded into the engine before serving.
    file: Option<String>,
    /// Data directory of a durable served engine (WAL + snapshot + LOCK).
    data_dir: Option<String>,
    /// Listen address.
    addr: String,
    /// Admission-control cap (requests in service at once).
    max_in_flight: Option<usize>,
    /// Per-request deadline in milliseconds.
    deadline_ms: Option<u64>,
    /// Leader address: serve as a read replica following it (needs --data-dir).
    follow: Option<String>,
    /// Leader lease timeout in milliseconds (follower promotion gate).
    lease_ms: Option<u64>,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            file: None,
            data_dir: None,
            addr: "127.0.0.1:7070".to_string(),
            max_in_flight: None,
            deadline_ms: None,
            follow: None,
            lease_ms: None,
        }
    }
}

fn parse_serve_args(args: &[String]) -> Result<ServeCliOptions, String> {
    let mut options = ServeCliOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--data-dir" => {
                options.data_dir = Some(
                    iter.next()
                        .ok_or_else(|| "--data-dir requires a directory argument".to_string())?
                        .clone(),
                );
            }
            "--addr" => {
                options.addr = iter
                    .next()
                    .ok_or_else(|| "--addr requires a HOST:PORT argument".to_string())?
                    .clone();
            }
            "--max-in-flight" => {
                options.max_in_flight = Some(
                    iter.next()
                        .ok_or_else(|| "--max-in-flight requires a number".to_string())?
                        .parse()
                        .map_err(|e| format!("--max-in-flight: {e}"))?,
                );
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    iter.next()
                        .ok_or_else(|| "--deadline-ms requires a number".to_string())?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--follow" => {
                options.follow = Some(
                    iter.next()
                        .ok_or_else(|| "--follow requires a HOST:PORT argument".to_string())?
                        .clone(),
                );
            }
            "--lease-ms" => {
                options.lease_ms = Some(
                    iter.next()
                        .ok_or_else(|| "--lease-ms requires a number".to_string())?
                        .parse()
                        .map_err(|e| format!("--lease-ms: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--") => {
                return Err(format!("unknown serve option `{other}`\n{}", usage()));
            }
            other => {
                if options.file.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                options.file = Some(other.to_string());
            }
        }
    }
    if options.follow.is_some() {
        if options.data_dir.is_none() {
            return Err("--follow requires --data-dir (a replica must be durable)".to_string());
        }
        if options.file.is_some() {
            return Err(
                "--follow conflicts with a FILE argument: a replica's state comes \
                 from the leader, not a local file"
                    .to_string(),
            );
        }
    }
    if options.lease_ms.is_some() && options.follow.is_none() {
        return Err("--lease-ms only applies with --follow".to_string());
    }
    Ok(options)
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut file = None;
    let mut query = None;
    let mut strategy = CliStrategy::Factored;
    let mut show_program = false;
    let mut explain = false;
    let mut stats = false;

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--query" => {
                query = Some(
                    iter.next()
                        .ok_or_else(|| "--query requires an argument".to_string())?
                        .clone(),
                );
            }
            "--strategy" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--strategy requires an argument".to_string())?;
                strategy = match value.as_str() {
                    "original" => CliStrategy::Original,
                    "magic" => CliStrategy::Magic,
                    "factored" | "pipeline" => CliStrategy::Factored,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--show-program" => show_program = true,
            "--explain" => explain = true,
            "--stats" => stats = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            other => {
                if file.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                file = Some(other.to_string());
            }
        }
    }
    Ok(CliOptions {
        file: file.ok_or_else(usage)?,
        query,
        strategy,
        show_program,
        explain,
        stats,
    })
}

/// Print cumulative session statistics in the CLI's one-line format.
fn print_session_stats(stats: &EvalStats) {
    println!(
        "% session stats: {} iterations, {} inferences, {} facts derived, {} duplicates, \
         plan cache {} hit(s) / {} miss(es)",
        stats.iterations,
        stats.inferences,
        stats.facts_derived,
        stats.duplicates,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
    );
}

fn run(options: &CliOptions) -> Result<(), String> {
    let source = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read {}: {e}", options.file))?;

    // One engine session for the whole invocation: every evaluation (materialization,
    // magic rewriting, prepared replays) accumulates into its per-session statistics.
    let mut engine = Engine::new();
    let summary = engine
        .load_source(&source)
        .map_err(|e| format!("{}: {e}", options.file))?;

    let query = match &options.query {
        Some(text) => parse_query(text).map_err(|e| format!("--query: {e}"))?,
        None => summary
            .query
            .clone()
            .ok_or_else(|| "no query: add a `?- atom.` clause or pass --query".to_string())?,
    };

    let (answers, label) = match options.strategy {
        CliStrategy::Original => {
            let answers = engine.query(&query).map_err(|e| e.to_string())?;
            if options.show_program {
                println!("% strategy: original\n{}", engine.program());
            }
            (answers, "original".to_string())
        }
        CliStrategy::Magic => {
            let adorned = adorn(engine.program(), &query).map_err(|e| e.to_string())?;
            let magicp = magic(&adorned).map_err(|e| e.to_string())?;
            if options.show_program {
                println!("% strategy: magic\n{}", magicp.program);
            }
            // Evaluate the magic program as an auxiliary engine session sharing the
            // facts, then fold its counters into the main session's.
            let mut magic_engine = Engine::new();
            magic_engine
                .add_rules(magicp.program)
                .map_err(|e| e.to_string())?;
            for (pred, rel) in engine.facts().iter() {
                for tuple in rel.iter() {
                    magic_engine
                        .insert(pred, tuple)
                        .map_err(|e| e.to_string())?;
                }
            }
            let answers = magic_engine
                .query(&adorned.query)
                .map_err(|e| e.to_string())?;
            engine.absorb_stats(magic_engine.stats());
            (answers, "magic".to_string())
        }
        CliStrategy::Factored => {
            if options.explain || options.show_program {
                let optimized =
                    optimize_query(engine.program(), &query, &PipelineOptions::default())
                        .map_err(|e| e.to_string())?;
                if options.explain {
                    println!("{}", optimized.report());
                }
                if options.show_program {
                    println!("% strategy: {}\n{}", optimized.strategy, optimized.program);
                }
            }
            let answers = engine.query_prepared(&query).map_err(|e| e.to_string())?;
            let strategy = engine
                .prepared_strategy(&query)
                .expect("plan cached by query_prepared");
            (answers, strategy.to_string())
        }
    };

    // Present answers in terms of the original query's variables.
    let free_vars: Vec<String> = query
        .atom
        .terms
        .iter()
        .filter_map(|t| t.as_var().map(|v| v.as_str().to_string()))
        .collect();
    println!("% {} answer(s) to {} [{}]", answers.len(), query, label);
    for row in &answers {
        let rendered: Vec<String> = free_vars
            .iter()
            .zip(row.iter())
            .map(|(v, c)| format!("{v} = {c}"))
            .collect();
        if rendered.is_empty() {
            println!("true");
        } else {
            println!("{}", rendered.join(", "));
        }
    }

    if options.stats {
        print_session_stats(engine.stats());
    }
    Ok(())
}

/// Ctrl-C support for interactive sessions: a SIGINT handler that sets the
/// engine's shared [`CancelToken`] instead of killing the process. The running
/// evaluation notices at its next cooperative poll (a bounded number of join
/// rows away), aborts with a structured error, and the REPL prints
/// `cancelled after …` and returns to the prompt. Raw `signal(2)` FFI — no
/// crate dependency; glibc's `signal` installs BSD (`SA_RESTART`) semantics,
/// so a Ctrl-C at the prompt does not kill the blocking `read_line` either.
#[cfg(unix)]
mod sigint {
    use std::sync::OnceLock;

    use factorlog::prelude::CancelToken;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    static SHUTDOWN: OnceLock<CancelToken> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler body is async-signal-safe: `OnceLock::get` is one atomic
    /// load of an initialized-flag, and [`CancelToken::cancel`] one relaxed
    /// atomic store. No allocation, locking, or I/O.
    extern "C" fn handle(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    extern "C" fn handle_shutdown(_signum: i32) {
        if let Some(token) = SHUTDOWN.get() {
            token.cancel();
        }
    }

    /// Install the handler, cancelling `token` on every SIGINT. Idempotent;
    /// only the first token is retained.
    pub fn install(token: CancelToken) {
        let _ = TOKEN.set(token);
        unsafe {
            signal(SIGINT, handle as *const () as usize);
        }
    }

    /// Serve mode: SIGTERM and SIGINT both request a *graceful* shutdown by
    /// setting `token` — the main loop notices and drains the server; nothing
    /// is killed mid-commit. Idempotent; only the first token is retained.
    pub fn install_shutdown(token: CancelToken) {
        let _ = SHUTDOWN.set(token);
        unsafe {
            signal(SIGINT, handle_shutdown as *const () as usize);
            signal(SIGTERM, handle_shutdown as *const () as usize);
        }
    }
}

/// Run `factorlog serve`: put the engine behind the concurrent TCP front end
/// and block until SIGTERM/Ctrl-C requests a graceful shutdown.
fn run_serve(options: &ServeCliOptions) -> Result<(), String> {
    let mut engine = match &options.data_dir {
        Some(dir) => {
            let engine = Engine::open_durable(dir).map_err(|e| format!("--data-dir {dir}: {e}"))?;
            let report = engine.recovery_report().cloned().unwrap_or_default();
            println!(
                "% durable session {dir}: {} fact(s) recovered ({})",
                engine.facts().total_facts(),
                report.describe()
            );
            engine
        }
        None => Engine::new(),
    };
    if let Some(path) = &options.file {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = engine
            .load_source(&source)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "% loaded {path}: {} rule(s), {} fact(s)",
            summary.rules_added, summary.facts_added
        );
    }
    let mut server_options = ServerOptions::default();
    if let Some(n) = options.max_in_flight {
        server_options.max_in_flight = n;
        server_options.write_queue_depth = n.max(1);
    }
    if let Some(ms) = options.deadline_ms {
        server_options.request_deadline = Some(std::time::Duration::from_millis(ms));
    }
    let handle = match &options.follow {
        Some(leader) => {
            let mut replication = ReplicationOptions::default();
            if let Some(ms) = options.lease_ms {
                replication.lease_timeout = std::time::Duration::from_millis(ms);
            }
            serve_follower(
                engine,
                leader.as_str(),
                options.addr.as_str(),
                server_options,
                replication,
            )
            .map_err(|e| format!("--addr {}: {e}", options.addr))?
        }
        None => serve(engine, options.addr.as_str(), server_options)
            .map_err(|e| format!("--addr {}: {e}", options.addr))?,
    };
    match &options.follow {
        Some(leader) => println!(
            "% factorlog replica on {} following {} (pid {}; PROMOTE takes over after \
             the lease expires; SIGTERM or Ctrl-C shuts down gracefully)",
            handle.addr(),
            leader,
            std::process::id()
        ),
        None => println!(
            "% factorlog serving on {} (pid {}; SIGTERM or Ctrl-C shuts down gracefully)",
            handle.addr(),
            std::process::id()
        ),
    }
    std::io::stdout().flush().ok();

    let shutdown = CancelToken::new();
    #[cfg(unix)]
    sigint::install_shutdown(shutdown.clone());
    while !shutdown.is_cancelled() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    println!("% shutdown requested; draining in-flight requests");
    let report = handle.shutdown();
    println!(
        "% served through epoch {} ({} request(s) shed); wal flushed; {}",
        report.epoch,
        report.shed,
        if report.drained_cleanly {
            "drained cleanly"
        } else {
            "stragglers cancelled"
        }
    );
    Ok(())
}

/// Run the interactive REPL; `options.data_dir` (when given) makes the session
/// durable, and `options.file` is loaded into it first.
fn run_repl(options: &ReplOptions) -> Result<(), String> {
    let mut repl = match &options.data_dir {
        Some(dir) => {
            let engine = Engine::open_durable(dir).map_err(|e| format!("--data-dir {dir}: {e}"))?;
            let report = engine.recovery_report().cloned().unwrap_or_default();
            println!(
                "% durable session {dir}: {} fact(s) recovered ({})",
                engine.facts().total_facts(),
                report.describe()
            );
            Repl::with_engine(engine)
        }
        None => Repl::new(),
    };
    if options.metrics_json.is_some() {
        repl.engine_mut().set_tracing(true);
    }
    // Ctrl-C cancels the running query (cooperatively, via the session's
    // shared token) instead of killing the session.
    #[cfg(unix)]
    sigint::install(repl.engine_mut().cancel_token());
    println!(
        "factorlog repl — :help for commands, :quit to leave (Ctrl-C cancels a running query)"
    );
    if let Some(path) = &options.file {
        match repl.execute(&format!(":load {path}")) {
            ReplAction::Output(message) => println!("{message}"),
            ReplAction::Quit => return dump_metrics(&repl, options),
        }
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let result = loop {
        print!("factorlog> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break Ok(()), // EOF
            Ok(_) => match repl.execute(&line) {
                ReplAction::Output(message) => {
                    if !message.is_empty() {
                        println!("{message}");
                    }
                }
                ReplAction::Quit => break Ok(()),
            },
            Err(e) => break Err(format!("stdin: {e}")),
        }
    };
    dump_metrics(&repl, options)?;
    result
}

/// Write the session's metrics JSON to `--metrics-json PATH` (no-op when the
/// flag was not given).
fn dump_metrics(repl: &Repl, options: &ReplOptions) -> Result<(), String> {
    let Some(path) = &options.metrics_json else {
        return Ok(());
    };
    std::fs::write(path, repl.engine().metrics_json())
        .map_err(|e| format!("--metrics-json {path}: {e}"))?;
    println!("% metrics written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("repl") {
        return match parse_repl_args(&args[1..]).and_then(|options| run_repl(&options)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match parse_serve_args(&args[1..]).and_then(|options| run_serve(&options)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(options) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_minimal_invocation() {
        let options = parse_args(&args(&["tc.dl"])).unwrap();
        assert_eq!(options.file, "tc.dl");
        assert_eq!(options.strategy, CliStrategy::Factored);
        assert!(options.query.is_none());
        assert!(!options.stats && !options.explain && !options.show_program);
    }

    #[test]
    fn parses_all_flags() {
        let options = parse_args(&args(&[
            "tc.dl",
            "--query",
            "t(0, Y)",
            "--strategy",
            "magic",
            "--stats",
            "--show-program",
            "--explain",
        ]))
        .unwrap();
        assert_eq!(options.query.as_deref(), Some("t(0, Y)"));
        assert_eq!(options.strategy, CliStrategy::Magic);
        assert!(options.stats && options.explain && options.show_program);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["a.dl", "b.dl"])).is_err());
        assert!(parse_args(&args(&["a.dl", "--strategy", "quantum"])).is_err());
        assert!(parse_args(&args(&["a.dl", "--query"])).is_err());
        assert!(parse_args(&args(&["a.dl", "--bogus"])).is_err());
    }

    #[test]
    fn runs_end_to_end_on_a_temporary_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("factorlog_cli_test.dl");
        std::fs::write(
            &path,
            "t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n\
             e(1, 2).\n e(2, 3).\n e(3, 4).\n ?- t(1, Y).\n",
        )
        .unwrap();
        let options = CliOptions {
            file: path.to_string_lossy().to_string(),
            query: None,
            strategy: CliStrategy::Factored,
            show_program: true,
            explain: false,
            stats: true,
        };
        run(&options).unwrap();
        // The magic strategy and the original strategy run on the same file too.
        for strategy in [CliStrategy::Magic, CliStrategy::Original] {
            let options = CliOptions {
                file: path.to_string_lossy().to_string(),
                query: Some("t(2, Y)".to_string()),
                strategy,
                show_program: false,
                explain: false,
                stats: false,
            };
            run(&options).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parses_repl_arguments() {
        assert_eq!(parse_repl_args(&args(&[])).unwrap(), ReplOptions::default());
        let options = parse_repl_args(&args(&["base.dl"])).unwrap();
        assert_eq!(options.file.as_deref(), Some("base.dl"));
        assert!(options.data_dir.is_none());
        let options = parse_repl_args(&args(&["--data-dir", "/tmp/d", "base.dl"])).unwrap();
        assert_eq!(options.data_dir.as_deref(), Some("/tmp/d"));
        assert_eq!(options.file.as_deref(), Some("base.dl"));
        let options =
            parse_repl_args(&args(&["--metrics-json", "/tmp/m.json", "base.dl"])).unwrap();
        assert_eq!(options.metrics_json.as_deref(), Some("/tmp/m.json"));
        assert_eq!(options.file.as_deref(), Some("base.dl"));
        assert!(parse_repl_args(&args(&["--data-dir"])).is_err());
        assert!(parse_repl_args(&args(&["--metrics-json"])).is_err());
        assert!(parse_repl_args(&args(&["a.dl", "b.dl"])).is_err());
        assert!(parse_repl_args(&args(&["--bogus"])).is_err());
    }

    #[test]
    fn parses_serve_arguments() {
        assert_eq!(
            parse_serve_args(&args(&[])).unwrap(),
            ServeCliOptions::default()
        );
        let options = parse_serve_args(&args(&[
            "base.dl",
            "--data-dir",
            "/tmp/d",
            "--addr",
            "0.0.0.0:9000",
            "--max-in-flight",
            "8",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(options.file.as_deref(), Some("base.dl"));
        assert_eq!(options.data_dir.as_deref(), Some("/tmp/d"));
        assert_eq!(options.addr, "0.0.0.0:9000");
        assert_eq!(options.max_in_flight, Some(8));
        assert_eq!(options.deadline_ms, Some(250));
        assert!(parse_serve_args(&args(&["--addr"])).is_err());
        assert!(parse_serve_args(&args(&["--max-in-flight", "lots"])).is_err());
        assert!(parse_serve_args(&args(&["a.dl", "b.dl"])).is_err());
        assert!(parse_serve_args(&args(&["--bogus"])).is_err());
    }

    #[test]
    fn parses_follower_serve_arguments() {
        let options = parse_serve_args(&args(&[
            "--data-dir",
            "/tmp/replica",
            "--follow",
            "127.0.0.1:7070",
            "--lease-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(options.follow.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(options.lease_ms, Some(500));
        assert_eq!(options.data_dir.as_deref(), Some("/tmp/replica"));
        // A replica must be durable, takes no FILE, and --lease-ms is
        // follower-only.
        let err = parse_serve_args(&args(&["--follow", "127.0.0.1:7070"])).unwrap_err();
        assert!(err.contains("--data-dir"), "{err}");
        let err = parse_serve_args(&args(&[
            "base.dl",
            "--data-dir",
            "/tmp/replica",
            "--follow",
            "127.0.0.1:7070",
        ]))
        .unwrap_err();
        assert!(err.contains("FILE"), "{err}");
        let err = parse_serve_args(&args(&["--lease-ms", "500"])).unwrap_err();
        assert!(err.contains("--follow"), "{err}");
        assert!(parse_serve_args(&args(&["--follow"])).is_err());
        assert!(parse_serve_args(&args(&["--lease-ms", "soon"])).is_err());
    }

    #[test]
    fn missing_query_is_an_error() {
        let dir = std::env::temp_dir();
        let path = dir.join("factorlog_cli_noquery.dl");
        std::fs::write(&path, "t(X, Y) :- e(X, Y).\ne(1, 2).\n").unwrap();
        let options = CliOptions {
            file: path.to_string_lossy().to_string(),
            query: None,
            strategy: CliStrategy::Factored,
            show_program: false,
            explain: false,
            stats: false,
        };
        let err = run(&options).unwrap_err();
        assert!(err.contains("no query"));
        std::fs::remove_file(&path).ok();
    }
}
