//! `factorlog` — a reproduction of *Argument Reduction by Factoring* (Naughton,
//! Ramakrishnan, Sagiv, Ullman; VLDB 1989 / Theoretical Computer Science 146, 1995).
//!
//! This facade crate re-exports the four underlying crates:
//!
//! * [`datalog`] — the bottom-up Datalog engine substrate (`factorlog-datalog`);
//! * [`core`] — adornment, Magic Sets, the factoring analysis and transformation, the
//!   §5 optimizations, Counting, and the one-sided/separable analyses
//!   (`factorlog-core`);
//! * [`workloads`] — the paper's programs and synthetic EDB generators
//!   (`factorlog-workloads`);
//! * [`engine`] — the persistent incremental runtime: sessions with materialized
//!   views maintained by delta-seeded semi-naive resumes, a prepared-query cache over
//!   the optimization pipeline, and the REPL front end (`factorlog-engine`).
//!
//! The [`prelude`] pulls in the handful of types most programs need.
//!
//! # Quickstart
//!
//! ```
//! use factorlog::prelude::*;
//!
//! // Example 1.1 of the paper.
//! let program = parse_program(factorlog::workloads::programs::THREE_RULE_TC)
//!     .unwrap()
//!     .program;
//! let query = parse_query("t(0, Y)").unwrap();
//!
//! // Optimize: Magic Sets + factoring + the §5 simplifications.
//! let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
//! assert_eq!(optimized.strategy, Strategy::FactoredMagic);
//!
//! // Evaluate over a 100-edge chain.
//! let edb = factorlog::workloads::graphs::chain(100);
//! let answers = optimized.answers(&edb).unwrap();
//! assert_eq!(answers.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use factorlog_core as core;
pub use factorlog_datalog as datalog;
pub use factorlog_engine as engine;
pub use factorlog_workloads as workloads;

/// The most commonly used items from all four crates.
pub mod prelude {
    pub use factorlog_core::conditions::{FactorabilityReport, FactorableClass};
    pub use factorlog_core::pipeline::{
        optimize_query, Optimized, PipelineOptions, PreparedPlan, Strategy,
    };
    pub use factorlog_core::{
        adorn, analyze, classify, counting, factor_magic, magic, optimize, reduce,
        FactoringContext, OptimizeOptions, TransformError,
    };
    pub use factorlog_datalog::ast::{Atom, Const, Program, Query, Rule, Term};
    pub use factorlog_datalog::eval::{
        evaluate, evaluate_default, seminaive_resume, seminaive_retract, CompiledProgram,
        EvalError, EvalOptions, EvalResult, EvalStats, Strategy as EvalStrategy,
    };
    pub use factorlog_datalog::parser::{parse_atom, parse_program, parse_query, parse_rule};
    pub use factorlog_datalog::storage::Database;
    pub use factorlog_datalog::Symbol;
    pub use factorlog_engine::{
        serve, serve_follower, CancelToken, Client, ClientError, CompactionFault,
        DurabilityOptions, Engine, EngineError, FaultAction, FaultInjector, FaultSite, LimitReason,
        Prepared, QueryReply, RecoveryReport, Repl, ReplAction, Replica, ReplicaRole,
        ReplicaStatus, ReplicationOptions, ServeError, ServerHandle, ServerMetrics, ServerOptions,
        ShutdownReport, Snapshot, StatsReply, SyncReport, Txn, TxnReply, TxnSummary,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let program = parse_program(crate::workloads::programs::RIGHT_LINEAR_TC)
            .unwrap()
            .program;
        let query = parse_query("t(0, Y)").unwrap();
        let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        let edb = crate::workloads::graphs::chain(10);
        assert_eq!(optimized.answers(&edb).unwrap().len(), 10);
    }
}
